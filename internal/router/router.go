package router

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"conduit/internal/faultinject"
	"conduit/internal/histo"
	"conduit/internal/metrics"
	"conduit/internal/trace"
	"conduit/internal/wire"
)

// Clock is the router's only source of wall time, injected by the
// caller: cmd/conduit-router passes the real clock, deterministic
// tests pass fakes or leave it zero. With Now nil the router records
// no wall latency; with After nil it never hedges. This package calls
// no time.* function directly — that is the conduitlint nondeterm
// contract, kept without an allowlist entry.
type Clock struct {
	Now   func() time.Time
	After func(time.Duration) <-chan time.Time
}

// Options tunes a Router.
type Options struct {
	// Retries is the maximum attempts per request, walking the ring
	// preference order (home, then successors, wrapping). < 1 means one
	// attempt: pure home placement, no failover.
	Retries int
	// Hedge duplicates a straggling request to the next target in the
	// preference order after HedgeAfter; the first response wins.
	// Requires Clock.After.
	Hedge bool
	// HedgeAfter is the straggler patience; <= 0 disables hedging.
	HedgeAfter time.Duration
	// BreakerThreshold opens a target's circuit breaker after this many
	// consecutive failures (0 disables breakers).
	BreakerThreshold int
	// BreakerCooldown is how many refused requests an open breaker eats
	// before letting a half-open probe through; < 1 selects 1. Counted
	// in requests, not wall time, so breaker trips replay exactly.
	BreakerCooldown int
	// Vnodes overrides the ring's virtual-node fan-out (0 = default).
	Vnodes int
	// Clock supplies wall time for latency recording and hedge timers.
	Clock Clock
	// Tracer records router-side placement spans (home choice, failover,
	// hedging) for sampled requests and stamps the trace context into
	// their wire frames, so the serving target records the request's
	// server-side spans under the same trace ID. Nil disables routing
	// traces. The router has no simulated clock of its own, so its spans
	// carry the winning response's simulated elapsed time and put events
	// at simulated offset 0; wall timestamps appear only when the
	// tracer's Options.Now is set.
	Tracer *trace.Tracer
}

// Stats counts the router's recovery activity — the cross-process
// mirror of serve.Recovery.
type Stats struct {
	// Requests counts calls to Do.
	Requests int64
	// Attempts counts request submissions to targets, including hedges.
	Attempts int64
	// Retries counts failover re-submissions after a failed attempt.
	Retries int64
	// Hedges counts duplicate dispatches to a successor target.
	Hedges int64
	// HedgeWins counts hedges whose duplicate answered first.
	HedgeWins int64
	// Refusals counts attempts short-circuited by an open breaker.
	Refusals int64
}

// ErrNoTargets is returned by Do when every attempt was refused or
// failed at the transport before any target produced a response.
var ErrNoTargets = errors.New("router: no target answered")

// ErrBreakerOpen marks attempts refused by a router-side per-target
// circuit breaker (distinct from wire.CodeCircuitOpen, which is a
// target-side per-shard breaker refusing).
var ErrBreakerOpen = errors.New("router: target breaker open")

// Router places requests across a fleet of target clients.
type Router struct {
	clients  []*Client
	ring     *Ring
	breakers *faultinject.BreakerSet
	opts     Options

	mu     sync.Mutex
	stats  Stats
	wall   *histo.Histogram       // router-observed request latency (needs Clock.Now)
	seq    uint64                 // routed-request sequence; trace IDs for sampled requests
	remote map[string][]wire.Span // spans returned by targets, keyed by target name
}

// New builds a router over connected clients. Target names (from their
// Hello frames) must be distinct; they are the ring's keys and the
// breakers' names.
func New(clients []*Client, opts Options) (*Router, error) {
	if len(clients) == 0 {
		return nil, fmt.Errorf("router: need at least one target")
	}
	names := make([]string, len(clients))
	for i, c := range clients {
		names[i] = c.Name()
	}
	ring, err := NewRing(names, opts.Vnodes)
	if err != nil {
		return nil, err
	}
	r := &Router{
		clients: clients,
		ring:    ring,
		opts:    opts,
		wall:    histo.New(),
		remote:  make(map[string][]wire.Span),
	}
	if opts.BreakerThreshold > 0 {
		cooldown := opts.BreakerCooldown
		if cooldown < 1 {
			cooldown = 1
		}
		r.breakers = faultinject.NewBreakerSet(opts.BreakerThreshold, cooldown)
	}
	return r, nil
}

// Targets returns the fleet's target names in client order.
func (r *Router) Targets() []string { return r.ring.Targets() }

// Home names the target a workload hashes to.
func (r *Router) Home(workload string) string {
	return r.clients[r.ring.Home(workload)].Name()
}

// retryable reports whether an attempt outcome should fail over to the
// next target. Transport errors, target-internal errors, draining, and
// target-side open breakers are the target's problem — walk the ring.
// Overload, deadline expiry, and bad requests are properties of the
// request or the offered load; replaying them elsewhere would let the
// fleet overdrive the very admission control being measured.
func retryable(resp wire.Response, err error) bool {
	if err != nil {
		return true
	}
	switch resp.Code {
	case wire.CodeError, wire.CodeDraining, wire.CodeCircuitOpen:
		return true
	}
	return false
}

// Do routes one request: home target first, ring successors on
// retryable failure, an optional hedge against stragglers. It returns
// the winning response and the name of the target that produced it.
// The error is non-nil only when no target produced a response at all.
func (r *Router) Do(req wire.Request) (wire.Response, string, error) {
	var start time.Time
	if r.opts.Clock.Now != nil {
		start = r.opts.Clock.Now()
	}
	resp, name, err := r.route(req)
	if r.opts.Clock.Now != nil {
		r.mu.Lock()
		r.wall.Add(int64(r.opts.Clock.Now().Sub(start)))
		r.mu.Unlock()
	}
	return resp, name, err
}

func (r *Router) route(req wire.Request) (wire.Response, string, error) {
	r.mu.Lock()
	r.stats.Requests++
	r.seq++
	seq := r.seq
	r.mu.Unlock()

	// Sampled requests get a router-rooted span tree; the trace ID (the
	// routed-request sequence number) rides the wire so the serving
	// target's spans land in the same trace.
	var root *trace.Span
	if t := r.opts.Tracer; t.ShouldSample(seq) {
		tr := t.Start(seq)
		root = tr.Root("router.request", 0, 0)
		root.SetAttr("workload", req.Workload)
		root.SetAttr("policy", req.Policy)
		root.SetAttr("home", r.Home(req.Workload))
	}

	order := r.ring.Order(req.Workload)
	attempts := r.opts.Retries
	if attempts < 1 {
		attempts = 1
	}
	var (
		lastResp wire.Response
		lastName string
		lastErr  error
		answered bool
	)
	for attempt := 0; attempt < attempts; attempt++ {
		c := r.clients[order[attempt%len(order)]]
		if r.breakers != nil && !r.breakers.Get(c.Name()).Allow() {
			r.mu.Lock()
			r.stats.Refusals++
			r.mu.Unlock()
			root.Event("breaker_open", 0, trace.Attr{Key: "target", Value: c.Name()})
			if lastErr == nil && !answered {
				lastErr = fmt.Errorf("target %s: %w", c.Name(), ErrBreakerOpen)
			}
			continue
		}
		if attempt > 0 {
			r.mu.Lock()
			r.stats.Retries++
			r.mu.Unlock()
			root.Event("retry", 0,
				trace.Attr{Key: "attempt", Value: fmt.Sprint(attempt)},
				trace.Attr{Key: "target", Value: c.Name()})
		}
		resp, err := r.attempt(c, req, order, attempt, root)
		if err == nil {
			answered = true
			lastResp, lastName, lastErr = resp, c.Name(), nil
		} else if !answered {
			lastErr = err
		}
		if r.breakers != nil {
			b := r.breakers.Get(c.Name())
			if retryable(resp, err) {
				b.Failure()
			} else {
				b.Success()
			}
		}
		if !retryable(resp, err) {
			root.End(resp.ElapsedSimNS)
			return resp, c.Name(), nil
		}
	}
	if answered {
		// Every attempt failed retryably but at least one target did
		// answer: surface that final response (e.g. the injected-fault
		// error after the ladder is exhausted).
		root.End(lastResp.ElapsedSimNS)
		return lastResp, lastName, nil
	}
	if lastErr == nil {
		lastErr = ErrNoTargets
	}
	root.End(0)
	return wire.Response{}, "", fmt.Errorf("%w: %v", ErrNoTargets, lastErr)
}

// attempt submits to one target, optionally racing a hedge on the next
// distinct target in the preference order. Under a sampled trace each
// submission gets its own child span whose ID becomes the wire parent,
// so target-side span trees hang off the exact attempt that caused them.
func (r *Router) attempt(c *Client, req wire.Request, order []int, attempt int, root *trace.Span) (wire.Response, error) {
	r.mu.Lock()
	r.stats.Attempts++
	r.mu.Unlock()
	sp := r.attemptSpan(root, c, fmt.Sprint(attempt), &req)
	ch, err := c.Submit(req)
	if err != nil {
		sp.End(0)
		return wire.Response{}, err
	}
	hedging := r.opts.Hedge && r.opts.HedgeAfter > 0 && r.opts.Clock.After != nil && len(order) > 1
	if !hedging {
		return r.resolve(c, sp, ch)
	}
	select {
	case f, ok := <-ch:
		return r.settle(c, sp, f, ok)
	case <-r.opts.Clock.After(r.opts.HedgeAfter):
	}
	// Primary is straggling: duplicate to the next distinct target.
	hc := r.clients[order[(attempt+1)%len(order)]]
	r.mu.Lock()
	r.stats.Hedges++
	r.stats.Attempts++
	r.mu.Unlock()
	root.Event("hedge", 0, trace.Attr{Key: "target", Value: hc.Name()})
	hreq := req
	hsp := r.attemptSpan(root, hc, "hedge:"+fmt.Sprint(attempt), &hreq)
	hch, herr := hc.Submit(hreq)
	if herr != nil {
		hsp.End(0)
		return r.resolve(c, sp, ch) // hedge stillborn; wait out the primary
	}
	select {
	case f, ok := <-ch:
		hsp.End(0)
		return r.settle(c, sp, f, ok)
	case f, ok := <-hch:
		sp.End(0)
		resp, err := r.settle(hc, hsp, f, ok)
		if err == nil {
			r.mu.Lock()
			r.stats.HedgeWins++
			r.mu.Unlock()
			root.Event("hedge_win", 0, trace.Attr{Key: "target", Value: hc.Name()})
		}
		return resp, err
	}
}

// attemptSpan opens one submission's span and stamps the trace context
// into the outgoing frame. Outside a sampled trace it leaves the frame's
// context zeroed and returns nil.
func (r *Router) attemptSpan(root *trace.Span, c *Client, key string, req *wire.Request) *trace.Span {
	if root == nil {
		return nil
	}
	sp := root.Child("router.attempt", key, 0)
	sp.SetAttr("target", c.Name())
	ctx := sp.Ctx()
	req.Trace = wire.TraceCtx{ID: ctx.ID, Parent: ctx.Parent, Sampled: true}
	return sp
}

// resolve awaits a submission channel, then settles its span and
// collects any returned remote spans.
func (r *Router) resolve(c *Client, sp *trace.Span, ch <-chan wire.Frame) (wire.Response, error) {
	f, ok := <-ch
	return r.settle(c, sp, f, ok)
}

// settle finishes one submission: decode the frame, end the attempt
// span at the target's simulated elapsed time, and file the spans the
// target sent back under its name.
func (r *Router) settle(c *Client, sp *trace.Span, f wire.Frame, ok bool) (wire.Response, error) {
	resp, err := resolveResponse(c, f, ok)
	if err != nil {
		sp.End(0)
		return resp, err
	}
	sp.End(resp.ElapsedSimNS)
	if sp != nil && len(resp.Spans) > 0 {
		r.mu.Lock()
		r.remote[c.Name()] = append(r.remote[c.Name()], resp.Spans...)
		r.mu.Unlock()
	}
	return resp, nil
}

func resolveResponse(c *Client, f wire.Frame, ok bool) (wire.Response, error) {
	if !ok {
		err := c.Err()
		if err == nil {
			err = fmt.Errorf("router: target %s: connection lost", c.Name())
		}
		return wire.Response{}, err
	}
	resp, isResp := f.(wire.Response)
	if !isResp {
		return wire.Response{}, fmt.Errorf("router: target %s answered a request with %T", c.Name(), f)
	}
	return resp, nil
}

// Stats returns a copy of the recovery counters.
func (r *Router) Stats() Stats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.stats
}

// Wall returns a clone of the router-observed request-latency
// histogram (empty unless a Clock.Now was injected).
func (r *Router) Wall() *histo.Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.wall.Clone()
}

// Breakers reports per-target breaker states, sorted by target name;
// empty when breakers are disabled.
func (r *Router) Breakers() []faultinject.BreakerStatus {
	if r.breakers == nil {
		return nil
	}
	return r.breakers.Snapshot()
}

// Fleet is the merged view of every target's snapshot.
type Fleet struct {
	// Targets holds the raw per-target snapshots, in client order.
	Targets []wire.Snapshot
	// Tenants is the exact sum of per-target tenant rows, sorted by
	// tenant name.
	Tenants []wire.TenantRow
	// Wall is the exact merge of per-target wall-latency histograms —
	// fleet-wide p50/p99/p999 come from here.
	Wall *histo.Histogram
}

// Snapshot polls every live target and merges. Targets that fail to
// answer (e.g. killed mid-run) are skipped; their name is listed in
// missing.
func (r *Router) Snapshot() (fleet Fleet, missing []string) {
	fleet.Wall = histo.New()
	for _, c := range r.clients {
		snap, err := c.Snapshot()
		if err != nil {
			missing = append(missing, c.Name())
			continue
		}
		fleet.Targets = append(fleet.Targets, snap)
		if snap.Wall != nil {
			fleet.Wall.Merge(snap.Wall)
		}
	}
	rowSets := make([][]wire.TenantRow, len(fleet.Targets))
	for i, snap := range fleet.Targets {
		rowSets[i] = snap.Tenants
	}
	fleet.Tenants = MergeTenants(rowSets...)
	return fleet, missing
}

// TargetDrain pairs one target's name with its drain acknowledgement.
type TargetDrain struct {
	Target string
	Ack    wire.DrainAck
}

// DrainAll drains every live target in client order and returns their
// acknowledgements (final pool counters). The ordering contract, which
// fleet drain reports rely on for byte-stable output: entries are
// sorted by target name, and each ack's pool rows are already
// name-sorted by the target (the wire-canonical order), so walking the
// result front to back visits (target, pool) pairs in one global
// deterministic order.
func (r *Router) DrainAll() []TargetDrain {
	var acks []TargetDrain
	for _, c := range r.clients {
		if ack, err := c.Drain(); err == nil {
			acks = append(acks, TargetDrain{Target: c.Name(), Ack: ack})
		}
	}
	sort.Slice(acks, func(i, j int) bool { return acks[i].Target < acks[j].Target })
	return acks
}

// RemoteSpans returns the spans targets attached to sampled responses,
// rehydrated, keyed by target name. Merge with the router's own
// Tracer.Spans() for the fleet-wide flight record; cmd/conduit-router
// writes exactly that merge as a Perfetto trace with one process per
// target.
func (r *Router) RemoteSpans() map[string][]*trace.Span {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string][]*trace.Span, len(r.remote))
	for name, spans := range r.remote {
		out[name] = trace.FromWire(spans)
	}
	return out
}

// FleetMetrics polls every live target's metrics snapshot, relabels
// each series with its target's name, and merges them with the
// router's own series into one fleet-wide scrape. Targets that fail to
// answer are skipped and listed in missing.
func (r *Router) FleetMetrics() (samples []metrics.Sample, missing []string) {
	reg := metrics.New()
	for _, c := range r.clients {
		m, err := c.Metrics()
		if err != nil {
			missing = append(missing, c.Name())
			continue
		}
		for _, s := range metrics.Relabel(metrics.FromWire(m.Samples), "target", m.Target) {
			reg.Add(s)
		}
	}
	st := r.Stats()
	reg.Count("conduit_router_requests_total", st.Requests)
	reg.Count("conduit_router_attempts_total", st.Attempts)
	reg.Count("conduit_router_retries_total", st.Retries)
	reg.Count("conduit_router_hedges_total", st.Hedges)
	reg.Count("conduit_router_hedge_wins_total", st.HedgeWins)
	reg.Count("conduit_router_refusals_total", st.Refusals)
	reg.MergeHist("conduit_router_wall_ns", r.Wall())
	return reg.Snapshot(), missing
}

// Close tears down every client connection without draining targets.
func (r *Router) Close() {
	for _, c := range r.clients {
		c.Close()
	}
}

// MergeTenants sums tenant rows across targets: every counter,
// recovery total, simulated time, and energy adds exactly, and the
// result is sorted by tenant name. Merging is associative and
// commutative because addition is — the property the fleet report
// tests pin.
func MergeTenants(rowSets ...[]wire.TenantRow) []wire.TenantRow {
	acc := make(map[string]wire.TenantRow)
	for _, rows := range rowSets {
		for _, row := range rows {
			t := acc[row.Tenant]
			t.Tenant = row.Tenant
			t.Requests += row.Requests
			t.Errors += row.Errors
			t.Shed += row.Shed
			t.Expired += row.Expired
			t.Shared += row.Shared
			t.Attained += row.Attained
			t.Recovery.Attempts += row.Recovery.Attempts
			t.Recovery.Retries += row.Recovery.Retries
			t.Recovery.Hedges += row.Recovery.Hedges
			t.Recovery.HedgeWins += row.Recovery.HedgeWins
			t.Recovery.Fallbacks += row.Recovery.Fallbacks
			t.Recovery.Injected += row.Recovery.Injected
			t.Recovery.BackoffSimNS += row.Recovery.BackoffSimNS
			t.SimNS += row.SimNS
			t.EnergyJ += row.EnergyJ
			acc[row.Tenant] = t
		}
	}
	names := make([]string, 0, len(acc))
	for name := range acc {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]wire.TenantRow, len(names))
	for i, name := range names {
		out[i] = acc[name]
	}
	return out
}
