// Package router is the front end of the conduit wire tier: it places
// workload requests onto a fleet of conduit-target processes and lifts
// the PR8 recovery ladder across process boundaries.
//
// Placement is consistent hashing of the workload name onto a ring of
// virtual nodes: every target registers the full workload suite, the
// ring picks each workload's home target (so its device pools and
// memoized results stay hot there), and the ring's distinct successors
// are the failover order. Retries walk that order; hedges race the
// home target against its first successor when the injected clock says
// the primary is straggling; per-target circuit breakers (the same
// faultinject.Breaker state machine the serving tier uses per shard)
// short-circuit targets that keep failing, counting cooldown in
// refused requests rather than wall time.
//
// Determinism discipline: this package never reads the wall clock
// directly — callers inject a Clock (cmd/conduit-router passes the real
// one, tests pass fakes or none), and with no clock the router degrades
// to pure sequential failover, which is what the wiretest equivalence
// harness runs: a zero-fault routed run is then byte-identical to
// in-process serving.
//
// The fleet view is the merge of per-target snapshots: deterministic
// tenant rows sum exactly, and wall-latency histograms merge exactly
// (internal/histo), so fleet-wide p50/p99/p999 are computed from the
// same counters a single process would have produced.
package router
