package faultinject

import (
	"sort"
	"sync"
)

// BreakerState is a circuit breaker's position.
type BreakerState int

// The three classical breaker states.
const (
	// BreakerClosed passes traffic and counts consecutive failures.
	BreakerClosed BreakerState = iota
	// BreakerOpen short-circuits traffic for a cooldown counted in
	// requests (not wall-clock time — determinism), then half-opens.
	BreakerOpen
	// BreakerHalfOpen admits a single probe: success closes the
	// breaker, failure re-opens it for another cooldown.
	BreakerHalfOpen
)

// String renders the state for reports.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	}
	return "unknown"
}

// A Breaker is a deterministic circuit breaker. It trips open after
// Threshold consecutive failures; while open it refuses (short-circuits)
// Cooldown requests, then admits one half-open probe whose outcome
// closes or re-opens it. All cadence is counted in requests, never in
// wall-clock time, so a serial request trace drives the breaker through
// an exactly reproducible state sequence. Safe for concurrent use.
type Breaker struct {
	mu        sync.Mutex
	threshold int
	cooldown  int
	state     BreakerState
	failures  int   // consecutive failures while closed
	refused   int   // requests short-circuited in the current open period
	trips     int64 // closed/half-open -> open transitions
}

// NewBreaker builds a breaker tripping after threshold consecutive
// failures (< 1 selects 1) with a cooldown of the given number of
// short-circuited requests before each half-open probe (< 1 selects 1).
func NewBreaker(threshold, cooldown int) *Breaker {
	if threshold < 1 {
		threshold = 1
	}
	if cooldown < 1 {
		cooldown = 1
	}
	return &Breaker{threshold: threshold, cooldown: cooldown}
}

// Allow reports whether the next request may pass. While open it
// returns false Cooldown times, then transitions to half-open and
// admits the next request as the probe. Admitting the probe
// provisionally closes the breaker one failure short of re-tripping:
// a failed probe re-opens it immediately, a success (which resets the
// consecutive-failure count) keeps it closed.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerOpen:
		b.refused++
		if b.refused >= b.cooldown {
			b.state = BreakerHalfOpen
		}
		return false
	default: // BreakerHalfOpen: the probe is the next allowed request
		b.state = BreakerClosed // provisional: Success keeps it, Failure re-opens
		b.failures = b.threshold - 1
		return true
	}
}

// Success records a passed request that succeeded.
func (b *Breaker) Success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.failures = 0
	if b.state != BreakerOpen {
		b.state = BreakerClosed
	}
}

// Failure records a passed request that failed, tripping the breaker
// once the consecutive-failure threshold is reached (a failed half-open
// probe re-opens immediately).
func (b *Breaker) Failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == BreakerOpen {
		return
	}
	b.failures++
	if b.failures >= b.threshold {
		b.state = BreakerOpen
		b.failures = 0
		b.refused = 0
		b.trips++
	}
}

// State returns the breaker's current position.
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Trips counts transitions into the open state so far.
func (b *Breaker) Trips() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.trips
}

// A BreakerSet keys breakers by name — the serving tier uses one per
// (workload, shard). Safe for concurrent use.
type BreakerSet struct {
	mu        sync.Mutex
	threshold int
	cooldown  int
	m         map[string]*Breaker
}

// NewBreakerSet builds a set whose breakers share one configuration.
func NewBreakerSet(threshold, cooldown int) *BreakerSet {
	return &BreakerSet{threshold: threshold, cooldown: cooldown, m: make(map[string]*Breaker)}
}

// Get returns (creating if needed) the named breaker.
func (s *BreakerSet) Get(name string) *Breaker {
	s.mu.Lock()
	defer s.mu.Unlock()
	b := s.m[name]
	if b == nil {
		b = NewBreaker(s.threshold, s.cooldown)
		s.m[name] = b
	}
	return b
}

// BreakerStatus is one breaker's snapshot in a set.
type BreakerStatus struct {
	Name  string
	State BreakerState
	Trips int64
}

// Snapshot reports every breaker in the set, sorted by name so rendered
// status is stable run to run.
func (s *BreakerSet) Snapshot() []BreakerStatus {
	s.mu.Lock()
	names := make([]string, 0, len(s.m))
	for name := range s.m {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]BreakerStatus, 0, len(names))
	for _, name := range names {
		b := s.m[name]
		out = append(out, BreakerStatus{Name: name, State: b.State(), Trips: b.Trips()})
	}
	s.mu.Unlock()
	return out
}

// Trips sums trip counts across the set.
func (s *BreakerSet) Trips() int64 {
	var total int64
	for _, st := range s.Snapshot() {
		total += st.Trips
	}
	return total
}
