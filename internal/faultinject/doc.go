// Package faultinject is the deterministic chaos layer: seeded,
// replayable fault schedules injected at the three seams of the serving
// stack — device-level shard runs (failures, panics, slow-shard
// degradation of simulated time), pool-level fork acquisition (refused
// or poisoned forks), and serve-level dispatch (backend errors).
//
// Determinism follows the same discipline as internal/loadgen: every
// decision is drawn from an explicitly seeded SplitMix64 stream, one
// independent substream per injection site (a seam x workload x shard
// triple), so whether a given attempt faults is a pure function of
// (seed, site, per-site sequence number) — independent of goroutine
// interleaving across sites. A serial driver replays bit-identically; a
// concurrent driver stays deterministic per site.
//
// Every injected fault is recorded and can be serialized as JSONL
// (mirroring internal/loadgen's trace format). A replay injector built
// from such a log reproduces the identical fault sequence without
// consulting the RNG at all, so any chaos run can be re-executed
// exactly.
//
// The package also houses the deterministic recovery primitives the
// serving tier composes on top of injection: capped exponential backoff
// charged to simulated time (never slept on the wall clock) and a
// request-count circuit breaker whose open/half-open cadence is counted
// in short-circuited requests rather than wall-clock cooldowns, keeping
// the whole fault-and-recovery story inside simulated time.
package faultinject
