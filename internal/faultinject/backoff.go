package faultinject

import "conduit/internal/sim"

// Backoff returns the simulated-time delay charged before retry number
// retry (1 = the first retry): base doubled per prior retry, capped at
// max. It is a pure function — no jitter, no wall clock — so a retried
// request's charged latency is as reproducible as the fault schedule
// that caused it. A non-positive base or retry charges nothing.
func Backoff(base, max sim.Time, retry int) sim.Time {
	if base <= 0 || retry <= 0 {
		return 0
	}
	d := base
	for i := 1; i < retry; i++ {
		if d >= max {
			break
		}
		d *= 2
	}
	if max > 0 && d > max {
		d = max
	}
	return d
}
