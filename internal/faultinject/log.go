package faultinject

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// Write emits faults as JSONL: one JSON object per line, in slice
// order — the same portable, diffable shape as loadgen traces.
func Write(w io.Writer, faults []Fault) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw) // Encode appends the newline
	for i := range faults {
		if err := enc.Encode(&faults[i]); err != nil {
			return fmt.Errorf("faultinject: write fault %d: %w", i, err)
		}
	}
	return bw.Flush()
}

// Read parses a JSONL fault log, skipping blank lines. Errors name the
// offending line.
func Read(r io.Reader) ([]Fault, error) {
	var faults []Fault
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for line := 1; sc.Scan(); line++ {
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var f Fault
		if err := json.Unmarshal(raw, &f); err != nil {
			return nil, fmt.Errorf("faultinject: fault log line %d: %w", line, err)
		}
		faults = append(faults, f)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("faultinject: read fault log: %w", err)
	}
	return faults, nil
}

// WriteFile records faults to path (overwriting).
func WriteFile(path string, faults []Fault) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := Write(f, faults); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadFile loads a JSONL fault log from path.
func ReadFile(path string) ([]Fault, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f)
}
