package faultinject

import (
	"fmt"
	"sync"

	"conduit/internal/sim"
)

// Config sets the per-attempt fault probabilities. The zero Config
// injects nothing: an Injector built from it draws its schedule but
// never fires, so wiring the machinery in at zero rates leaves every
// run byte-identical to one with no injector at all.
type Config struct {
	// Seed roots every per-site decision stream.
	Seed uint64
	// ShardFail is the probability a device-level shard run fails after
	// executing (its work is charged, its result discarded).
	ShardFail float64
	// SlowShard is the probability a shard run is degraded: its
	// simulated elapsed time is multiplied by SlowFactor, modeling a
	// busy or throttled drive without changing what it computed.
	SlowShard float64
	// SlowFactor is the degradation multiplier (< 1 selects 4).
	SlowFactor float64
	// PanicRate is the probability a shard run panics mid-flight — the
	// containment drill for the scatter-gather recovery path.
	PanicRate float64
	// ForkFail is the probability acquiring a pooled fork fails before
	// any device is obtained.
	ForkFail float64
	// PoisonFork is the probability an acquired fork is poisoned: the
	// clone is unusable, the attempt fails, and the pool quarantines
	// its buffer (see conduit.DevicePool).
	PoisonFork float64
	// BackendError is the probability the serve-level dispatch of a
	// request errors before reaching the application at all.
	BackendError float64
}

func (c Config) slowFactor() float64 {
	if c.SlowFactor < 1 {
		return 4
	}
	return c.SlowFactor
}

// Kind names an injected fault class in logs and reports.
type Kind string

// The injectable fault kinds, one per seam decision.
const (
	KindBackend   Kind = "backend"    // serve-level dispatch error
	KindForkFail  Kind = "fork-fail"  // pool-level fork acquisition failure
	KindPoison    Kind = "poison"     // pool-level poisoned clone
	KindPanic     Kind = "panic"      // device-level shard run panic
	KindShardFail Kind = "shard-fail" // device-level shard run failure
	KindSlow      Kind = "slow"       // device-level slow-shard degradation
)

// Fault is one injected fault, as recorded and replayed. Site plus
// SiteSeq identify the exact decision point (the SiteSeq'th decision
// drawn at Site), which is what lets a replay injector reproduce the
// schedule without an RNG; Seq orders the log as captured.
type Fault struct {
	Seq      int64   `json:"seq"`
	Site     string  `json:"site"`
	SiteSeq  int64   `json:"site_seq"`
	Kind     Kind    `json:"kind"`
	Workload string  `json:"workload"`
	Shard    int     `json:"shard,omitempty"`
	Attempt  int     `json:"attempt"`
	Slowdown float64 `json:"slowdown,omitempty"`
}

// ForkDecision is the pool-seam outcome for one fork acquisition.
type ForkDecision struct {
	// Fail refuses the acquisition outright; no device is obtained.
	Fail bool
	// Poison hands out a fork that turns out to be unusable; the
	// acquisition consumed a clone and the pool should quarantine.
	Poison bool
}

// ShardDecision is the device-seam outcome for one shard run attempt.
type ShardDecision struct {
	// Panic makes the run panic mid-flight.
	Panic bool
	// Fail discards the run's result after it executed.
	Fail bool
	// Slowdown, when > 1, multiplies the run's simulated elapsed time.
	Slowdown float64
}

// siteState is one injection site's private decision stream.
type siteState struct {
	rng *sim.RNG
	seq int64
}

// An Injector draws the fault schedule. A nil *Injector is the disabled
// layer: every decision method returns the zero decision without
// touching any state, so fault-free paths pay one nil check.
//
// An Injector is safe for concurrent use; decisions at distinct sites
// are independent substreams, so concurrency across sites cannot
// perturb any site's schedule.
type Injector struct {
	mu    sync.Mutex
	cfg   Config
	sites map[string]*siteState
	// replay, when non-nil, overrides the RNG: decision (site, seq)
	// fires iff the recorded log fired there.
	replay map[string]map[int64]Fault
	log    []Fault
	seq    int64
}

// New builds a live injector drawing from cfg's seeded streams.
func New(cfg Config) *Injector {
	return &Injector{cfg: cfg, sites: make(map[string]*siteState)}
}

// NewReplay builds an injector that replays a recorded fault log: the
// i'th decision at each site fires exactly as recorded, independent of
// any rate configuration. Decisions beyond the log inject nothing.
func NewReplay(faults []Fault) *Injector {
	in := &Injector{sites: make(map[string]*siteState), replay: make(map[string]map[int64]Fault)}
	for _, f := range faults {
		m := in.replay[f.Site]
		if m == nil {
			m = make(map[int64]Fault)
			in.replay[f.Site] = m
		}
		m[f.SiteSeq] = f
	}
	return in
}

// Log returns a copy of every fault injected so far, in capture order.
// Under a serial driver the order is fully deterministic; concurrent
// drivers stay deterministic per site (Site+SiteSeq), which is the
// identity replay keys on.
func (in *Injector) Log() []Fault {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return append([]Fault(nil), in.log...)
}

// siteSeed derives the site's independent substream seed by mixing the
// root seed with an FNV-1a hash of the site name through the SplitMix64
// finalizer (the same split discipline as loadgen.Stream). Hashing the
// name — rather than numbering sites by creation order — makes the
// substream a pure function of the site's identity.
func siteSeed(root uint64, site string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(site); i++ {
		h ^= uint64(site[i])
		h *= 1099511628211
	}
	z := root + (h+1)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// site returns (creating if needed) the state for a site; caller holds
// in.mu.
func (in *Injector) site(name string) *siteState {
	st := in.sites[name]
	if st == nil {
		st = &siteState{rng: sim.NewRNG(siteSeed(in.cfg.Seed, name))}
		in.sites[name] = st
	}
	return st
}

// record appends one injected fault to the log; caller holds in.mu.
func (in *Injector) record(f Fault) {
	f.Seq = in.seq
	in.seq++
	in.log = append(in.log, f)
}

// Dispatch draws the serve-level seam for one dispatch attempt of
// workload: true means the dispatch errors before reaching the
// application.
func (in *Injector) Dispatch(workload string, attempt int) bool {
	if in == nil {
		return false
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	site := "serve|" + workload
	st := in.site(site)
	seq := st.seq
	st.seq++
	if in.replay != nil {
		f, ok := in.replay[site][seq]
		if !ok || f.Kind != KindBackend {
			return false
		}
		in.record(f)
		return true
	}
	if st.rng.Float64() >= in.cfg.BackendError {
		return false
	}
	in.record(Fault{Site: site, SiteSeq: seq, Kind: KindBackend, Workload: workload, Attempt: attempt})
	return true
}

// Fork draws the pool seam for one fork acquisition on a shard. Exactly
// two uniforms are consumed per call regardless of the outcome, so the
// stream position is a function of the call count alone.
func (in *Injector) Fork(workload string, shard, attempt int) ForkDecision {
	if in == nil {
		return ForkDecision{}
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	site := fmt.Sprintf("pool|%s#%d", workload, shard)
	st := in.site(site)
	seq := st.seq
	st.seq++
	if in.replay != nil {
		f, ok := in.replay[site][seq]
		if !ok {
			return ForkDecision{}
		}
		var d ForkDecision
		switch f.Kind {
		case KindForkFail:
			d.Fail = true
		case KindPoison:
			d.Poison = true
		default:
			return ForkDecision{}
		}
		in.record(f)
		return d
	}
	pFail := st.rng.Float64()
	pPoison := st.rng.Float64()
	f := Fault{Site: site, SiteSeq: seq, Workload: workload, Shard: shard, Attempt: attempt}
	switch {
	case pFail < in.cfg.ForkFail:
		f.Kind = KindForkFail
		in.record(f)
		return ForkDecision{Fail: true}
	case pPoison < in.cfg.PoisonFork:
		f.Kind = KindPoison
		in.record(f)
		return ForkDecision{Poison: true}
	}
	return ForkDecision{}
}

// Shard draws the device seam for one shard run attempt. Exactly three
// uniforms are consumed per call; when several faults fire at once the
// precedence is panic > fail > slow (a failed run may still carry a
// Slowdown — the discarded attempt's charged cost is the degraded one).
func (in *Injector) Shard(workload string, shard, attempt int) ShardDecision {
	if in == nil {
		return ShardDecision{}
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	site := fmt.Sprintf("dev|%s#%d", workload, shard)
	st := in.site(site)
	seq := st.seq
	st.seq++
	if in.replay != nil {
		f, ok := in.replay[site][seq]
		if !ok {
			return ShardDecision{}
		}
		var d ShardDecision
		switch f.Kind {
		case KindPanic:
			d.Panic = true
		case KindShardFail:
			d.Fail = true
			d.Slowdown = f.Slowdown
		case KindSlow:
			d.Slowdown = f.Slowdown
		default:
			return ShardDecision{}
		}
		in.record(f)
		return d
	}
	pPanic := st.rng.Float64()
	pFail := st.rng.Float64()
	pSlow := st.rng.Float64()
	var d ShardDecision
	if pSlow < in.cfg.SlowShard {
		d.Slowdown = in.cfg.slowFactor()
	}
	if pFail < in.cfg.ShardFail {
		d.Fail = true
	}
	if pPanic < in.cfg.PanicRate {
		d = ShardDecision{Panic: true}
	}
	f := Fault{Site: site, SiteSeq: seq, Workload: workload, Shard: shard, Attempt: attempt, Slowdown: d.Slowdown}
	switch {
	case d.Panic:
		f.Kind = KindPanic
		f.Slowdown = 0
		in.record(f)
	case d.Fail:
		f.Kind = KindShardFail
		in.record(f)
	case d.Slowdown > 1:
		f.Kind = KindSlow
		in.record(f)
	}
	return d
}
