package faultinject

import (
	"bytes"
	"fmt"
	"reflect"
	"sync"
	"testing"

	"conduit/internal/sim"
)

// drive runs a fixed decision schedule against in and returns the
// decision outcomes as a comparable transcript.
func drive(in *Injector) []string {
	var out []string
	for req := 0; req < 50; req++ {
		for attempt := 1; attempt <= 2; attempt++ {
			out = append(out, fmt.Sprintf("dispatch=%v", in.Dispatch("w", attempt)))
			for shard := 0; shard < 2; shard++ {
				fd := in.Fork("w", shard, attempt)
				sd := in.Shard("w", shard, attempt)
				out = append(out, fmt.Sprintf("s%d fork=%+v shard=%+v", shard, fd, sd))
			}
		}
	}
	return out
}

var chaosCfg = Config{
	Seed:      7,
	ShardFail: 0.2, SlowShard: 0.2, PanicRate: 0.1,
	ForkFail: 0.1, PoisonFork: 0.1, BackendError: 0.1,
}

// TestInjectorDeterministic: same seed, same call schedule, same
// decisions and same log — the schedule is a pure function of the seed.
func TestInjectorDeterministic(t *testing.T) {
	a, b := New(chaosCfg), New(chaosCfg)
	if got, want := drive(a), drive(b); !reflect.DeepEqual(got, want) {
		t.Fatal("identical seeds produced different decision transcripts")
	}
	if !reflect.DeepEqual(a.Log(), b.Log()) {
		t.Fatal("identical seeds produced different fault logs")
	}
	if len(a.Log()) == 0 {
		t.Fatal("chaos config injected nothing; rates too low for the schedule")
	}
	other := New(Config{Seed: 8, ShardFail: 0.2, SlowShard: 0.2, PanicRate: 0.1,
		ForkFail: 0.1, PoisonFork: 0.1, BackendError: 0.1})
	if reflect.DeepEqual(drive(a), drive(other)) {
		t.Fatal("different seeds produced identical transcripts")
	}
}

// TestInjectorSitesIndependent: a site's decision stream is unperturbed
// by how many draws other sites take in between — per-site substreams,
// the property that keeps concurrent shards deterministic.
func TestInjectorSitesIndependent(t *testing.T) {
	solo := New(chaosCfg)
	var want []ShardDecision
	for i := 0; i < 40; i++ {
		want = append(want, solo.Shard("w", 0, 1))
	}
	mixed := New(chaosCfg)
	var got []ShardDecision
	for i := 0; i < 40; i++ {
		// Interleave draws at other sites between every shard-0 draw.
		mixed.Dispatch("w", 1)
		mixed.Fork("w", 1, 1)
		mixed.Shard("w", 1, 1)
		got = append(got, mixed.Shard("w", 0, 1))
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("shard-0 schedule perturbed by draws at other sites")
	}
}

// TestInjectorZeroRatesInjectNothing: the wired-in-but-idle layer.
func TestInjectorZeroRatesInjectNothing(t *testing.T) {
	in := New(Config{Seed: 3})
	for _, line := range drive(in) {
		if line != "dispatch=false" &&
			line != "s0 fork={Fail:false Poison:false} shard={Panic:false Fail:false Slowdown:0}" &&
			line != "s1 fork={Fail:false Poison:false} shard={Panic:false Fail:false Slowdown:0}" {
			t.Fatalf("zero-rate injector produced a fault: %s", line)
		}
	}
	if n := len(in.Log()); n != 0 {
		t.Fatalf("zero-rate injector logged %d faults", n)
	}
	var nilIn *Injector
	if nilIn.Dispatch("w", 1) || nilIn.Log() != nil {
		t.Fatal("nil injector not inert")
	}
}

// TestReplayReproducesSchedule: a replay injector built from a recorded
// log makes the identical decisions on the identical call schedule, and
// re-records the same faults (mod global capture order, which a serial
// driver also preserves).
func TestReplayReproducesSchedule(t *testing.T) {
	live := New(chaosCfg)
	want := drive(live)
	rep := NewReplay(live.Log())
	if got := drive(rep); !reflect.DeepEqual(got, want) {
		t.Fatal("replayed decisions differ from the recorded run")
	}
	if got, want := rep.Log(), live.Log(); !reflect.DeepEqual(got, want) {
		t.Fatalf("replay re-recorded a different log: %d vs %d faults", len(got), len(want))
	}
}

// TestFaultLogRoundTrip: JSONL encode/decode is lossless.
func TestFaultLogRoundTrip(t *testing.T) {
	live := New(chaosCfg)
	drive(live)
	faults := live.Log()
	var buf bytes.Buffer
	if err := Write(&buf, faults); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, faults) {
		t.Fatal("fault log did not round-trip through JSONL")
	}
}

// TestInjectorConcurrentSafe: concurrent decisions race-cleanly and the
// per-site transcript stays the deterministic one.
func TestInjectorConcurrentSafe(t *testing.T) {
	in := New(chaosCfg)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				in.Shard("w", g, 1)
				in.Fork("w", g, 1)
			}
		}(g)
	}
	wg.Wait()
	// Per-site replay identity: site g's decisions must match a solo run.
	solo := New(chaosCfg)
	var want []ShardDecision
	for i := 0; i < 100; i++ {
		want = append(want, solo.Shard("w", 2, 1))
		solo.Fork("w", 2, 1)
	}
	perSite := map[string][]Fault{}
	for _, f := range in.Log() {
		perSite[f.Site] = append(perSite[f.Site], f)
	}
	soloDev := map[int64]Fault{}
	for _, f := range solo.Log() {
		if f.Site == "dev|w#2" {
			soloDev[f.SiteSeq] = f
		}
	}
	concDev := map[int64]Fault{}
	for _, f := range perSite["dev|w#2"] {
		f.Seq = 0 // capture order differs under concurrency; identity is (site, site_seq)
		concDev[f.SiteSeq] = f
	}
	for seq, f := range soloDev {
		f.Seq = 0
		if got, ok := concDev[seq]; !ok || !reflect.DeepEqual(got, f) {
			t.Fatalf("site dev|w#2 seq %d: concurrent fault %+v, want %+v", seq, concDev[seq], f)
		}
	}
	if len(soloDev) != len(concDev) {
		t.Fatalf("site dev|w#2: %d faults concurrent vs %d solo", len(concDev), len(soloDev))
	}
}

// TestBackoffSchedule pins the capped-doubling schedule.
func TestBackoffSchedule(t *testing.T) {
	base, max := sim.Time(100), sim.Time(500)
	want := []sim.Time{100, 200, 400, 500, 500}
	for i, w := range want {
		if got := Backoff(base, max, i+1); got != w {
			t.Errorf("Backoff(retry=%d) = %v, want %v", i+1, got, w)
		}
	}
	if got := Backoff(0, max, 1); got != 0 {
		t.Errorf("zero base charged %v", got)
	}
	if got := Backoff(base, max, 0); got != 0 {
		t.Errorf("retry 0 charged %v", got)
	}
}

// TestBreakerLifecycle drives closed -> open -> half-open probe ->
// closed, and a failed probe re-opening.
func TestBreakerLifecycle(t *testing.T) {
	b := NewBreaker(3, 2)
	for i := 0; i < 2; i++ {
		if !b.Allow() {
			t.Fatal("closed breaker refused")
		}
		b.Failure()
	}
	if b.State() != BreakerClosed {
		t.Fatal("tripped below threshold")
	}
	b.Allow()
	b.Failure() // third consecutive failure: trip
	if b.State() != BreakerOpen || b.Trips() != 1 {
		t.Fatalf("state=%v trips=%d after threshold failures", b.State(), b.Trips())
	}
	// Cooldown: two refusals, then the half-open probe passes.
	if b.Allow() {
		t.Fatal("open breaker allowed during cooldown")
	}
	if b.Allow() {
		t.Fatal("open breaker allowed during cooldown")
	}
	if !b.Allow() {
		t.Fatal("half-open breaker refused the probe")
	}
	b.Failure() // failed probe: re-open immediately
	if b.State() != BreakerOpen || b.Trips() != 2 {
		t.Fatalf("failed probe: state=%v trips=%d", b.State(), b.Trips())
	}
	b.Allow()
	b.Allow()
	if !b.Allow() {
		t.Fatal("second probe refused")
	}
	b.Success()
	if b.State() != BreakerClosed {
		t.Fatal("successful probe did not close the breaker")
	}
	// A single later failure must not re-trip a freshly closed breaker.
	b.Failure()
	if b.State() != BreakerClosed {
		t.Fatal("closed breaker re-tripped on one failure after a successful probe")
	}
}

// TestBreakerSetSnapshotSorted: stable, per-name breakers.
func TestBreakerSetSnapshotSorted(t *testing.T) {
	s := NewBreakerSet(1, 1)
	s.Get("w#1").Failure()
	s.Get("w#0").Allow()
	if a, b := s.Get("w#0"), s.Get("w#0"); a != b {
		t.Fatal("Get minted a fresh breaker for a known name")
	}
	snap := s.Snapshot()
	if len(snap) != 2 || snap[0].Name != "w#0" || snap[1].Name != "w#1" {
		t.Fatalf("snapshot not name-sorted: %+v", snap)
	}
	if snap[1].State != BreakerOpen || s.Trips() != 1 {
		t.Fatalf("threshold-1 breaker did not trip: %+v (trips=%d)", snap[1], s.Trips())
	}
}
