package wire

import (
	"bytes"
	"encoding/binary"
	"io"
	"math"
	"reflect"
	"strings"
	"testing"

	"conduit/internal/histo"
)

// sampleFrames returns one representative of every frame type,
// populated with edge-flavored values (empty and non-empty lists,
// negative and large numbers, non-finite floats).
func sampleFrames() []Frame {
	wall := histo.New()
	for i := int64(0); i < 1000; i++ {
		wall.Add(i * i * 1000)
	}
	return []Frame{
		Hello{Target: "target-0", Shards: 4, Workloads: []string{"aes", "jacobi-1d", "llama2"}},
		Hello{Target: "t", Shards: 0},
		Request{ID: 1, Tenant: "tenant-00", Workload: "aes", Policy: "Conduit"},
		Request{ID: math.MaxUint64, Tenant: "", Workload: "w", Policy: "p",
			DeadlineNS: int64(1e12), Shards: []uint32{0, 3, math.MaxUint32}},
		Response{ID: 7, Code: CodeOK, ElapsedSimNS: 123456789, EnergyJ: 0.25,
			Recovery: Recovery{Attempts: 3, Retries: 2, BackoffSimNS: 400000},
			Result: &Result{Policy: "Conduit", ComputeEnergyJ: 0.1, MovementEnergyJ: 0.15,
				OverheadNS: 42, Decisions: 9, InstCount: 100, InstMeanNS: 1234,
				Counters: []Counter{{"senses", 12}, {"bbops", -3}}}},
		Response{ID: 8, Code: CodeError, Error: "conduit: boom",
			ElapsedSimNS: -1, EnergyJ: math.Inf(1),
			Recovery: Recovery{Attempts: 5, Injected: 5}},
		Response{ID: 9, Code: CodeDraining, Error: "serve: engine is draining"},
		SnapshotReq{ID: 11},
		Snapshot{ID: 12, Target: "target-1",
			Tenants: []TenantRow{
				{Tenant: "tenant-00", Requests: 10, Errors: 1, Attained: 9,
					Recovery: Recovery{Attempts: 11}, SimNS: 999, EnergyJ: 1.5},
				{Tenant: "tenant-01", Shed: 2, Expired: 1, Shared: 3, SimNS: -5},
			},
			Pools: []PoolRow{{Name: "aes#0", Preforked: 4, Hits: 3, Misses: 1, Idle: 2, Closed: true}},
			Wall:  wall},
		Snapshot{ID: 13, Target: "empty", Wall: histo.New()},
		Drain{ID: 14},
		DrainAck{ID: 15, Pools: []PoolRow{{Name: "aes", Idle: 0, Closed: true}}},
		DrainAck{ID: 16},
		Request{ID: 17, Tenant: "tenant-02", Workload: "aes", Policy: "Conduit",
			Trace: TraceCtx{ID: 0xfeedface, Parent: 0x1234, Sampled: true}},
		Response{ID: 18, Code: CodeOK, ElapsedSimNS: 555, Result: &Result{Policy: "CPU"},
			Spans: []Span{
				{TraceID: 0xfeedface, ID: 2, Parent: 1, Name: "serve.request",
					SimStartNS: 0, SimEndNS: 555,
					Attrs: []Attr{{Key: "tenant", Value: "tenant-02"}},
					Events: []SpanEvent{{Name: "retry", SimNS: 100,
						Attrs: []Attr{{Key: "attempt", Value: "1"}}}}},
				{TraceID: 0xfeedface, ID: 3, Parent: 2, Name: "serve.run",
					SimStartNS: -10, SimEndNS: 545},
			}},
		MetricsReq{ID: 19},
		Metrics{ID: 20, Target: "target-0", Samples: []MetricSample{
			{Name: "conduit_serve_requests_total",
				Labels: []Attr{{Key: "tenant", Value: "tenant-00"}},
				Kind:   MetricCounter, Value: 12},
			{Name: "conduit_pool_idle", Kind: MetricGauge, Value: -2.5},
			{Name: "conduit_serve_latency_wall_ns", Kind: MetricHistogram, Hist: wall},
		}},
		Metrics{ID: 21, Target: "empty"},
	}
}

// TestFrameRoundTrip: decode(encode(f)) == f for every frame type, and
// the encoding is canonical (re-encoding the decoded frame reproduces
// the bytes).
func TestFrameRoundTrip(t *testing.T) {
	for i, f := range sampleFrames() {
		enc, err := Encode(f)
		if err != nil {
			t.Fatalf("frame %d (%T): encode: %v", i, f, err)
		}
		got, err := ReadFrame(bytes.NewReader(enc))
		if err != nil {
			t.Fatalf("frame %d (%T): decode: %v", i, f, err)
		}
		if !reflect.DeepEqual(got, f) {
			t.Errorf("frame %d (%T): round trip changed the frame\n got: %+v\nwant: %+v", i, f, got, f)
		}
		re, err := Encode(got)
		if err != nil {
			t.Fatalf("frame %d (%T): re-encode: %v", i, f, err)
		}
		if !bytes.Equal(enc, re) {
			t.Errorf("frame %d (%T): encoding not canonical", i, f)
		}
	}
}

// TestFrameStream: many frames written back to back decode in order —
// the shape of one router connection.
func TestFrameStream(t *testing.T) {
	frames := sampleFrames()
	var buf bytes.Buffer
	for _, f := range frames {
		if err := WriteFrame(&buf, f); err != nil {
			t.Fatal(err)
		}
	}
	for i, want := range frames {
		got, err := ReadFrame(&buf)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("frame %d: stream decode differs", i)
		}
	}
	if _, err := ReadFrame(&buf); err != io.EOF {
		t.Errorf("after the stream: %v, want io.EOF", err)
	}
}

// TestDecodeRejectsMalformed: truncated payloads, bad versions, bad
// types, limit violations, and inconsistent frames all error.
func TestDecodeRejectsMalformed(t *testing.T) {
	valid := Append(nil, sampleFrames()[0])
	for i := 0; i < len(valid); i++ {
		if _, err := Decode(valid[:i]); err == nil {
			t.Fatalf("prefix of length %d accepted", i)
		}
	}

	longStr := strings.Repeat("x", MaxString+1)
	cases := map[string]Frame{
		"oversized string":   Request{ID: 1, Tenant: longStr, Workload: "w", Policy: "p"},
		"oversized shardset": Request{ID: 1, Workload: "w", Policy: "p", Shards: make([]uint32, MaxShardSet+1)},
		"negative deadline":  Request{ID: 1, Workload: "w", Policy: "p", DeadlineNS: -1},
		"ok with error":      Response{ID: 1, Code: CodeOK, Error: "x", Result: &Result{}},
		"error with result":  Response{ID: 1, Code: CodeError, Error: "x", Result: &Result{}},
		"error without msg":  Response{ID: 1, Code: CodeError},
		"span unnamed": Response{ID: 1, Code: CodeError, Error: "x",
			Spans: []Span{{TraceID: 1, ID: 2, SimEndNS: 5}}},
		"span time-reversed": Response{ID: 1, Code: CodeError, Error: "x",
			Spans: []Span{{TraceID: 1, ID: 2, Name: "s", SimStartNS: 10, SimEndNS: 5}}},
		"span event unnamed": Response{ID: 1, Code: CodeError, Error: "x",
			Spans: []Span{{TraceID: 1, ID: 2, Name: "s", Events: []SpanEvent{{SimNS: 1}}}}},
		"metric unnamed": Metrics{ID: 1, Target: "t",
			Samples: []MetricSample{{Kind: MetricCounter, Value: 1}}},
		"metric bad kind": Metrics{ID: 1, Target: "t",
			Samples: []MetricSample{{Name: "m", Kind: MetricKind(9)}}},
	}
	for name, f := range cases {
		if _, err := Encode(f); err == nil {
			t.Errorf("%s: Encode accepted an invalid frame", name)
		}
	}

	raw := map[string][]byte{
		"empty":         {},
		"version only":  {Version},
		"bad version":   {Version + 1, byte(TypeRequest)},
		"unknown type":  {Version, 200},
		"trailing junk": append(Append(nil, Drain{ID: 1}), 9, 9),
		"bool byte 2": func() []byte {
			// A response whose has-result flag is 2.
			b := Append(nil, Response{ID: 1, Code: CodeDraining, Error: "d"})
			b[len(b)-1] = 2
			return b
		}(),
	}
	for name, b := range raw {
		if _, err := Decode(b); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

// TestVersion1Compat: frames from a version-1 peer — which carry no
// trace context, spans, or metrics — still decode under the
// dual-version window, because version 2 appended its trace fields
// strictly at the end of the v1 bodies. A v1 payload must not smuggle
// v2 bytes: trailing trace fields and the v2-only metrics frames are
// rejected under version 1.
func TestVersion1Compat(t *testing.T) {
	// A v1 Request is the v2 encoding minus the trailing trace context
	// (ID u64 + Parent u64 + Sampled bool = 17 bytes).
	req := Request{ID: 3, Tenant: "a", Workload: "w", Policy: "p", DeadlineNS: 5,
		Shards: []uint32{0, 1}}
	enc := Append(nil, req)
	v1 := append([]byte{1}, enc[1:len(enc)-17]...)
	got, err := Decode(v1)
	if err != nil {
		t.Fatalf("v1 request: %v", err)
	}
	if !reflect.DeepEqual(got, req) {
		t.Errorf("v1 request decoded to %+v, want %+v", got, req)
	}

	// A v1 Response is the v2 encoding minus the trailing empty span
	// list (one zero uvarint byte).
	resp := Response{ID: 4, Code: CodeError, Error: "x", ElapsedSimNS: 9,
		Recovery: Recovery{Attempts: 2}}
	enc = Append(nil, resp)
	v1 = append([]byte{1}, enc[1:len(enc)-1]...)
	got, err = Decode(v1)
	if err != nil {
		t.Fatalf("v1 response: %v", err)
	}
	if !reflect.DeepEqual(got, resp) {
		t.Errorf("v1 response decoded to %+v, want %+v", got, resp)
	}

	// A full v2 body relabeled as v1 has trailing junk the v1 grammar
	// must refuse.
	traced := Request{ID: 5, Workload: "w", Policy: "p",
		Trace: TraceCtx{ID: 9, Sampled: true}}
	enc = Append(nil, traced)
	if _, err := Decode(append([]byte{1}, enc[1:]...)); err == nil {
		t.Error("v1 payload with trailing v2 trace bytes accepted")
	}

	// The metrics frames do not exist in version 1 at all.
	for _, f := range []Frame{MetricsReq{ID: 6}, Metrics{ID: 7, Target: "t"}} {
		enc := Append(nil, f)
		if _, err := Decode(append([]byte{1}, enc[1:]...)); err == nil {
			t.Errorf("%T accepted in a version-1 payload", f)
		}
	}
}

// TestReadFrameBoundsAllocation: a forged length prefix larger than
// MaxFrame is rejected before any allocation, and a prefix larger than
// the actual stream errors cleanly.
func TestReadFrameBoundsAllocation(t *testing.T) {
	var huge bytes.Buffer
	binary.Write(&huge, binary.BigEndian, uint32(MaxFrame+1))
	huge.WriteString("body never materializes")
	if _, err := ReadFrame(&huge); err == nil || !strings.Contains(err.Error(), "MaxFrame") {
		t.Errorf("oversized prefix: %v", err)
	}

	var lying bytes.Buffer
	binary.Write(&lying, binary.BigEndian, uint32(1000))
	lying.Write([]byte{Version, byte(TypeDrain)})
	if _, err := ReadFrame(&lying); err == nil || !strings.Contains(err.Error(), "truncated") {
		t.Errorf("lying prefix: %v", err)
	}

	var tiny bytes.Buffer
	binary.Write(&tiny, binary.BigEndian, uint32(1))
	tiny.WriteByte(Version)
	if _, err := ReadFrame(&tiny); err == nil {
		t.Error("sub-minimum frame accepted")
	}
}

// TestListCountCannotOverAllocate: a frame claiming a huge element
// count with a tiny body must be rejected by the remaining-bytes check,
// never allocated.
func TestListCountCannotOverAllocate(t *testing.T) {
	// A hello frame claiming MaxList workloads with no bytes behind them.
	b := []byte{Version, byte(TypeHello)}
	b = appendString(b, "t")
	b = appendInt64(b, 1)
	b = appendUvarint(b, MaxList)
	if _, err := Decode(b); err == nil {
		t.Error("hello with phantom workloads accepted")
	}
	// Beyond MaxList is rejected by the limit itself.
	b2 := []byte{Version, byte(TypeHello)}
	b2 = appendString(b2, "t")
	b2 = appendInt64(b2, 1)
	b2 = appendUvarint(b2, MaxList+1)
	if _, err := Decode(b2); err == nil || !strings.Contains(err.Error(), "MaxList") {
		t.Errorf("over-MaxList count: %v", err)
	}
}
