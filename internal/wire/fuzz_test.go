package wire

import (
	"bytes"
	"math"
	"reflect"
	"testing"

	"conduit/internal/histo"
)

// FuzzWireDecode feeds the decoder adversarial payloads: it must never
// panic, never allocate beyond the input's real size, and — when it
// does accept a payload — the decoded frame must re-encode canonically
// and decode back to itself.
func FuzzWireDecode(f *testing.F) {
	for _, fr := range sampleFrames() {
		f.Add(Append(nil, fr))
	}
	f.Add([]byte{})
	f.Add([]byte{Version})
	f.Add([]byte{Version + 1, byte(TypeRequest), 0})
	f.Add([]byte{Version, 255})
	f.Add(bytes.Repeat([]byte{0xff}, 64))
	f.Fuzz(func(t *testing.T, payload []byte) {
		fr, err := Decode(payload)
		if err != nil {
			return
		}
		re := Append(nil, fr)
		back, err := Decode(re)
		if err != nil {
			t.Fatalf("re-encoding of accepted frame rejected: %v\npayload %x", err, payload)
		}
		if !reflect.DeepEqual(fr, back) {
			t.Fatalf("re-encode round trip changed frame\n  was: %+v\n  now: %+v", fr, back)
		}
		// Canonical: a twice-encoded frame is byte-stable.
		if again := Append(nil, back); !bytes.Equal(re, again) {
			t.Fatalf("encoding not canonical:\n first: %x\nsecond: %x", re, again)
		}
	})
}

// FuzzWireRoundTrip builds structured request/response frames from
// fuzzed fields and requires exact round trips through the codec —
// the complement of FuzzWireDecode: every encodable frame decodes to
// itself.
func FuzzWireRoundTrip(f *testing.F) {
	f.Add(uint64(1), "tenant-00", "aes", "Conduit", int64(0), uint8(0), int64(1000), 0.5, "")
	f.Add(uint64(0), "", "w", "p", int64(1e15), uint8(1), int64(-7), math.Inf(-1), "some failure")
	f.Add(^uint64(0), "t\x00n", "w🚀", "p", int64(1), uint8(4), int64(1<<60), math.NaN(), "serve: engine is draining")
	f.Fuzz(func(t *testing.T, id uint64, tenant, workload, policy string,
		deadline int64, code uint8, elapsed int64, energy float64, errText string) {
		if len(tenant) > MaxString || len(workload) > MaxString ||
			len(policy) > MaxString || len(errText) > MaxString {
			return
		}
		if deadline < 0 {
			deadline = -deadline
		}
		if deadline < 0 { // MinInt64 negates to itself
			return
		}

		req := Request{ID: id, Tenant: tenant, Workload: workload, Policy: policy,
			DeadlineNS: deadline, Shards: []uint32{uint32(id), uint32(id >> 32)}}
		checkRoundTrip(t, req)

		resp := Response{ID: id, Code: Code(code % 7), ElapsedSimNS: elapsed,
			EnergyJ: energy, Recovery: Recovery{Attempts: elapsed % 97, BackoffSimNS: deadline}}
		if resp.Code == CodeOK {
			resp.Result = &Result{Policy: policy, ComputeEnergyJ: energy,
				OverheadNS: elapsed, InstCount: int64(id % 1024),
				Counters: []Counter{{Name: workload, Value: elapsed}}}
		} else {
			if errText == "" {
				errText = "x"
			}
			resp.Error = errText
		}
		checkRoundTrip(t, resp)

		wall := histo.New()
		for i := int64(0); i < int64(id%64); i++ {
			wall.Add(elapsed&math.MaxInt64 + i)
		}
		snap := Snapshot{ID: id, Target: tenant,
			Tenants: []TenantRow{{Tenant: tenant, Requests: elapsed, EnergyJ: energy,
				Recovery: Recovery{Retries: deadline}}},
			Pools: []PoolRow{{Name: workload, Idle: elapsed % 13, Closed: code%2 == 0}},
			Wall:  wall}
		checkRoundTrip(t, snap)
	})
}

func checkRoundTrip(t *testing.T, f Frame) {
	t.Helper()
	enc, err := Encode(f)
	if err != nil {
		t.Fatalf("%T: encode: %v", f, err)
	}
	got, err := ReadFrame(bytes.NewReader(enc))
	if err != nil {
		t.Fatalf("%T: decode: %v", f, err)
	}
	if !equalFrame(got, f) {
		t.Fatalf("%T: round trip changed frame\n got: %+v\nwant: %+v", f, got, f)
	}
}

// equalFrame is DeepEqual with NaN-tolerant float comparison: NaN
// round-trips bit-exactly but is not DeepEqual to itself.
func equalFrame(a, b Frame) bool {
	ea := Append(nil, a)
	eb := Append(nil, b)
	return bytes.Equal(ea, eb)
}
