// Package wire defines the framed request/response protocol the
// conduit serving fleet speaks: conduit-router (the host-side
// initiator) encodes requests into command capsules, conduit-target
// (the target-side poller) dispatches them to its serve engine and
// answers with outcome capsules — the NVMe-over-Fabrics shape scaled
// down to the simulator's needs.
//
// A frame on the wire is
//
//	uint32 big-endian payload length
//	byte   protocol version
//	byte   frame type
//	body   (type-specific, varint/length-prefixed fields)
//
// Every frame the protocol defines is carried by one Go struct (Hello,
// Request, Response, SnapshotReq, Snapshot, Drain, DrainAck), and the
// codec is canonical: encoding is a pure function of the struct, so
// equal frames encode to equal bytes — which is what lets the wiretest
// harness prove a routed fleet byte-identical to in-process serving by
// comparing encodings.
//
// Decoding is strict and allocation-bounded: the length prefix is
// capped at MaxFrame before any buffer is sized, element counts are
// validated against both protocol limits and the bytes actually
// present before slices are allocated, strings are length-capped, and
// a frame must consume its payload exactly — truncated, oversized, or
// trailing-byte inputs are errors, never panics. FuzzWireDecode and
// FuzzWireRoundTrip (with committed corpora) enforce this on
// adversarial inputs.
//
// The payload deliberately carries only deterministic quantities —
// simulated time, energy, recovery accounting, substrate counters —
// plus the per-target wall-clock latency histogram as an opaque
// mergeable snapshot (internal/histo's canonical codec). Wall-clock
// per-request latency is measured by whoever holds the clock (the
// router, the target's serve engine), never shipped, so response
// frames are comparable across runs.
package wire
