package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"conduit/internal/histo"
)

// Protocol limits. Decoders enforce every one of them before sizing a
// buffer, so a hostile peer cannot make a conduit process allocate more
// than MaxFrame bytes per frame.
const (
	// Version is the protocol revision encoders emit. Decoders accept
	// MinVersion through Version — strictly: a version-1 body must
	// contain exactly the version-1 fields, a version-2 body must
	// contain the trace fields — and reject anything else outright.
	Version = 2
	// MinVersion is the oldest revision decoders still accept.
	// Version 1 predates trace propagation and the metrics frames: a
	// v1 Request decodes with a zero TraceCtx, a v1 Response with no
	// spans, and the metrics frame types are v2-only.
	MinVersion = 1
	// MaxFrame bounds one frame's payload (version byte, type byte, and
	// body) on the wire.
	MaxFrame = 1 << 20
	// MaxString bounds every string field.
	MaxString = 1 << 12
	// MaxShardSet bounds a request's shard-set.
	MaxShardSet = 64
	// MaxList bounds every repeated field (workloads, tenant rows, pool
	// rows, counters).
	MaxList = 1 << 12
)

// Type tags a frame's kind on the wire.
type Type uint8

// The frame types.
const (
	TypeHello       Type = 1 // target -> router, once per connection
	TypeRequest     Type = 2 // router -> target
	TypeResponse    Type = 3 // target -> router
	TypeSnapshotReq Type = 4 // router -> target
	TypeSnapshot    Type = 5 // target -> router
	TypeDrain       Type = 6 // router -> target: drain and shut down
	TypeDrainAck    Type = 7 // target -> router, after the drain finished
	TypeMetricsReq  Type = 8 // router -> target: scrape the metrics registry (v2+)
	TypeMetrics     Type = 9 // target -> router: one metrics snapshot (v2+)
)

// Frame is one protocol message. Exactly the nine wire structs
// implement it.
type Frame interface{ frameType() Type }

func (Hello) frameType() Type       { return TypeHello }
func (Request) frameType() Type     { return TypeRequest }
func (Response) frameType() Type    { return TypeResponse }
func (SnapshotReq) frameType() Type { return TypeSnapshotReq }
func (Snapshot) frameType() Type    { return TypeSnapshot }
func (Drain) frameType() Type       { return TypeDrain }
func (DrainAck) frameType() Type    { return TypeDrainAck }
func (MetricsReq) frameType() Type  { return TypeMetricsReq }
func (Metrics) frameType() Type     { return TypeMetrics }

// Hello is the target's greeting, sent once when a connection opens: it
// names the target, its shard fan-out, and the workloads it serves, so
// the router can validate placement before routing a single request.
type Hello struct {
	Target    string
	Shards    int64
	Workloads []string
}

// Request is one offload command capsule.
type Request struct {
	// ID correlates the response; the issuer chooses it and the target
	// echoes it. IDs are per-connection.
	ID       uint64
	Tenant   string
	Workload string
	Policy   string
	// DeadlineNS is the request's SLO budget in nanoseconds from
	// submission at the target; 0 means none.
	DeadlineNS int64
	// Shards restricts the request to a subset of the target's shards.
	// Empty means every shard the target owns — the only set current
	// targets accept; the field exists so a future router can split one
	// request across targets that each own part of a dataset.
	Shards []uint32
	// Trace is the issuer's trace context. The field is optional in
	// meaning (the zero value is "untraced") but canonical on the wire:
	// every version-2 Request carries it, and a version-1 Request
	// decodes with the zero value.
	Trace TraceCtx
}

// TraceCtx carries distributed-trace identity with a request, so the
// target's spans join the issuer's trace instead of starting their own.
type TraceCtx struct {
	// ID is the trace ID; 0 means untraced.
	ID uint64
	// Parent is the issuer's span that dispatched this request.
	Parent uint64
	// Sampled asks the target to record spans for this request.
	Sampled bool
}

// Code classifies a response, mirroring the serving tier's typed errors
// so the router can tell retryable conditions from verdicts.
type Code uint8

// The response codes.
const (
	CodeOK          Code = 0
	CodeError       Code = 1 // backend failure (recovery exhausted, organic error)
	CodeOverloaded  Code = 2 // shed at admission, never executed
	CodeDeadline    Code = 3 // deadline expired in the admission queue
	CodeDraining    Code = 4 // target is draining
	CodeCircuitOpen Code = 5 // a breaker refused it and no fallback is set
	CodeBadRequest  Code = 6 // unknown workload/policy or malformed frame
)

// Recovery mirrors serve.Recovery field for field: the fault-tolerance
// work behind one response, in deterministic simulated quantities.
type Recovery struct {
	Attempts     int64
	Retries      int64
	Hedges       int64
	HedgeWins    int64
	Fallbacks    int64
	Injected     int64
	BackoffSimNS int64
}

// Counter is one named substrate activity counter of a run result.
type Counter struct {
	Name  string
	Value int64
}

// Result is the deterministic summary of a successful run: the
// simulated-cost fields of a conduit RunResult, the offload-decision
// and instruction-latency fingerprints, and the substrate counters in
// first-use order. It deliberately omits the executed device and the
// raw latency reservoir — the wire carries verdicts, not simulator
// state.
type Result struct {
	Policy          string
	ComputeEnergyJ  float64
	MovementEnergyJ float64
	OverheadNS      int64
	Decisions       int64
	InstCount       int64
	InstMeanNS      int64
	Counters        []Counter
}

// Response is one outcome capsule. Every field is deterministic given
// the request stream and the target's seed/trace: wall-clock latency is
// deliberately absent, which is what makes two independent runs of the
// same schedule byte-comparable frame by frame.
type Response struct {
	ID   uint64
	Code Code
	// Error is the backend error text; empty iff Code is CodeOK.
	Error string
	// ElapsedSimNS is the simulated execution time, including charged
	// recovery backoff.
	ElapsedSimNS int64
	// EnergyJ is the total consumed energy in joules.
	EnergyJ  float64
	Recovery Recovery
	// Result is present iff Code is CodeOK.
	Result *Result
	// Spans are the target-side trace spans for a sampled request,
	// empty otherwise. Like every other Response field they carry only
	// deterministic simulated quantities — span wall-clock fields never
	// cross the wire. Version-1 responses decode with no spans.
	Spans []Span
}

// Attr is one key/value annotation on a span, an event, or a metric
// sample's label set.
type Attr struct {
	Key   string
	Value string
}

// SpanEvent is one point-in-time occurrence inside a wire span, on the
// request's simulated timeline.
type SpanEvent struct {
	Name  string
	SimNS int64
	Attrs []Attr
}

// Span is one trace span as it crosses the wire: identity, simulated
// timeline, annotations. Wall-clock fields are deliberately absent —
// the wire carries only quantities both ends can agree on
// deterministically.
type Span struct {
	TraceID    uint64
	ID         uint64
	Parent     uint64
	Name       string
	SimStartNS int64
	SimEndNS   int64
	Attrs      []Attr
	Events     []SpanEvent
}

// MetricsReq asks the target for a metrics snapshot (version 2+).
type MetricsReq struct{ ID uint64 }

// MetricKind tags a metric sample's type on the wire.
type MetricKind uint8

// The metric kinds.
const (
	MetricCounter   MetricKind = 0
	MetricGauge     MetricKind = 1
	MetricHistogram MetricKind = 2
)

// MetricSample is one named, labeled series value. Counters and gauges
// carry Value; histograms carry Hist (and no Value byte on the wire).
type MetricSample struct {
	Name   string
	Labels []Attr
	Kind   MetricKind
	Value  float64
	// Hist is non-nil iff Kind is MetricHistogram.
	Hist *histo.Histogram
}

// Metrics is the target's metrics snapshot: the registry's samples in
// canonical (name, labels) order (version 2+).
type Metrics struct {
	ID      uint64
	Target  string
	Samples []MetricSample
}

// SnapshotReq asks the target for its accounting snapshot.
type SnapshotReq struct{ ID uint64 }

// TenantRow is one tenant's deterministic accounting totals at a
// target: the wall-clock percentile columns of the serve report are
// intentionally absent (they ride in Snapshot.Wall instead, as a
// mergeable histogram).
type TenantRow struct {
	Tenant   string
	Requests int64
	Errors   int64
	Shed     int64
	Expired  int64
	Shared   int64
	Attained int64
	Recovery Recovery
	SimNS    int64
	EnergyJ  float64
}

// PoolRow is one device pool's counters at a target ("workload" or
// "workload#shard").
type PoolRow struct {
	Name        string
	Preforked   int64
	Hits        int64
	Misses      int64
	Quarantined int64
	Repairs     int64
	Idle        int64
	Closed      bool
}

// Snapshot is the target's accounting state: per-tenant deterministic
// rows, per-pool counters, and the target's wall-clock latency
// histogram as a mergeable snapshot the router folds into fleet-wide
// percentiles.
type Snapshot struct {
	ID      uint64
	Target  string
	Tenants []TenantRow
	Pools   []PoolRow
	// Wall is the target's all-tenants wall-clock latency histogram;
	// never nil in a valid frame.
	Wall *histo.Histogram
}

// Drain asks the target to drain gracefully: stop admitting, finish
// in-flight requests, close every pool, then answer with DrainAck and
// shut down.
type Drain struct{ ID uint64 }

// DrainAck reports the completed drain, with the final pool counters —
// the cross-process version of the "no leaked forks after Drain" pin.
type DrainAck struct {
	ID    uint64
	Pools []PoolRow
}

// ---- encoding ----

func appendUvarint(b []byte, v uint64) []byte { return binary.AppendUvarint(b, v) }

// appendInt64 zigzag-encodes v so small negatives stay small on the
// wire and every int64 round-trips exactly.
func appendInt64(b []byte, v int64) []byte {
	return binary.AppendUvarint(b, uint64(v)<<1^uint64(v>>63))
}

func appendF64(b []byte, v float64) []byte {
	return binary.BigEndian.AppendUint64(b, math.Float64bits(v))
}

func appendString(b []byte, s string) []byte {
	b = appendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

func appendBool(b []byte, v bool) []byte {
	if v {
		return append(b, 1)
	}
	return append(b, 0)
}

func appendRecovery(b []byte, r Recovery) []byte {
	b = appendInt64(b, r.Attempts)
	b = appendInt64(b, r.Retries)
	b = appendInt64(b, r.Hedges)
	b = appendInt64(b, r.HedgeWins)
	b = appendInt64(b, r.Fallbacks)
	b = appendInt64(b, r.Injected)
	return appendInt64(b, r.BackoffSimNS)
}

// Append encodes f (version, type, body — everything but the length
// prefix) onto dst and returns the extended slice.
func Append(dst []byte, f Frame) []byte {
	dst = append(dst, Version, byte(f.frameType()))
	switch fr := f.(type) {
	case Hello:
		dst = appendString(dst, fr.Target)
		dst = appendInt64(dst, fr.Shards)
		dst = appendUvarint(dst, uint64(len(fr.Workloads)))
		for _, w := range fr.Workloads {
			dst = appendString(dst, w)
		}
	case Request:
		dst = binary.BigEndian.AppendUint64(dst, fr.ID)
		dst = appendString(dst, fr.Tenant)
		dst = appendString(dst, fr.Workload)
		dst = appendString(dst, fr.Policy)
		dst = appendInt64(dst, fr.DeadlineNS)
		dst = appendUvarint(dst, uint64(len(fr.Shards)))
		for _, s := range fr.Shards {
			dst = appendUvarint(dst, uint64(s))
		}
		dst = binary.BigEndian.AppendUint64(dst, fr.Trace.ID)
		dst = binary.BigEndian.AppendUint64(dst, fr.Trace.Parent)
		dst = appendBool(dst, fr.Trace.Sampled)
	case Response:
		dst = binary.BigEndian.AppendUint64(dst, fr.ID)
		dst = append(dst, byte(fr.Code))
		dst = appendString(dst, fr.Error)
		dst = appendInt64(dst, fr.ElapsedSimNS)
		dst = appendF64(dst, fr.EnergyJ)
		dst = appendRecovery(dst, fr.Recovery)
		if fr.Result == nil {
			dst = appendBool(dst, false)
		} else {
			dst = appendBool(dst, true)
			r := fr.Result
			dst = appendString(dst, r.Policy)
			dst = appendF64(dst, r.ComputeEnergyJ)
			dst = appendF64(dst, r.MovementEnergyJ)
			dst = appendInt64(dst, r.OverheadNS)
			dst = appendInt64(dst, r.Decisions)
			dst = appendInt64(dst, r.InstCount)
			dst = appendInt64(dst, r.InstMeanNS)
			dst = appendUvarint(dst, uint64(len(r.Counters)))
			for _, c := range r.Counters {
				dst = appendString(dst, c.Name)
				dst = appendInt64(dst, c.Value)
			}
		}
		dst = appendSpans(dst, fr.Spans)
	case SnapshotReq:
		dst = binary.BigEndian.AppendUint64(dst, fr.ID)
	case Snapshot:
		dst = binary.BigEndian.AppendUint64(dst, fr.ID)
		dst = appendString(dst, fr.Target)
		dst = appendUvarint(dst, uint64(len(fr.Tenants)))
		for _, t := range fr.Tenants {
			dst = appendString(dst, t.Tenant)
			dst = appendInt64(dst, t.Requests)
			dst = appendInt64(dst, t.Errors)
			dst = appendInt64(dst, t.Shed)
			dst = appendInt64(dst, t.Expired)
			dst = appendInt64(dst, t.Shared)
			dst = appendInt64(dst, t.Attained)
			dst = appendRecovery(dst, t.Recovery)
			dst = appendInt64(dst, t.SimNS)
			dst = appendF64(dst, t.EnergyJ)
		}
		dst = appendPools(dst, fr.Pools)
		wall := fr.Wall
		if wall == nil {
			wall = histo.New()
		}
		blob := wall.MarshalBinary()
		dst = appendUvarint(dst, uint64(len(blob)))
		dst = append(dst, blob...)
	case Drain:
		dst = binary.BigEndian.AppendUint64(dst, fr.ID)
	case DrainAck:
		dst = binary.BigEndian.AppendUint64(dst, fr.ID)
		dst = appendPools(dst, fr.Pools)
	case MetricsReq:
		dst = binary.BigEndian.AppendUint64(dst, fr.ID)
	case Metrics:
		dst = binary.BigEndian.AppendUint64(dst, fr.ID)
		dst = appendString(dst, fr.Target)
		dst = appendUvarint(dst, uint64(len(fr.Samples)))
		for _, m := range fr.Samples {
			dst = appendString(dst, m.Name)
			dst = appendAttrs(dst, m.Labels)
			dst = append(dst, byte(m.Kind))
			if m.Kind == MetricHistogram {
				h := m.Hist
				if h == nil {
					h = histo.New()
				}
				blob := h.MarshalBinary()
				dst = appendUvarint(dst, uint64(len(blob)))
				dst = append(dst, blob...)
			} else {
				dst = appendF64(dst, m.Value)
			}
		}
	default:
		panic(fmt.Sprintf("wire: Append of unknown frame %T", f))
	}
	return dst
}

func appendAttrs(dst []byte, attrs []Attr) []byte {
	dst = appendUvarint(dst, uint64(len(attrs)))
	for _, a := range attrs {
		dst = appendString(dst, a.Key)
		dst = appendString(dst, a.Value)
	}
	return dst
}

func appendSpans(dst []byte, spans []Span) []byte {
	dst = appendUvarint(dst, uint64(len(spans)))
	for _, s := range spans {
		dst = binary.BigEndian.AppendUint64(dst, s.TraceID)
		dst = binary.BigEndian.AppendUint64(dst, s.ID)
		dst = binary.BigEndian.AppendUint64(dst, s.Parent)
		dst = appendString(dst, s.Name)
		dst = appendInt64(dst, s.SimStartNS)
		dst = appendInt64(dst, s.SimEndNS)
		dst = appendAttrs(dst, s.Attrs)
		dst = appendUvarint(dst, uint64(len(s.Events)))
		for _, e := range s.Events {
			dst = appendString(dst, e.Name)
			dst = appendInt64(dst, e.SimNS)
			dst = appendAttrs(dst, e.Attrs)
		}
	}
	return dst
}

func appendPools(dst []byte, pools []PoolRow) []byte {
	dst = appendUvarint(dst, uint64(len(pools)))
	for _, p := range pools {
		dst = appendString(dst, p.Name)
		dst = appendInt64(dst, p.Preforked)
		dst = appendInt64(dst, p.Hits)
		dst = appendInt64(dst, p.Misses)
		dst = appendInt64(dst, p.Quarantined)
		dst = appendInt64(dst, p.Repairs)
		dst = appendInt64(dst, p.Idle)
		dst = appendBool(dst, p.Closed)
	}
	return dst
}

// Encode returns f as a complete wire frame: 4-byte big-endian length
// prefix followed by the payload Append produces. It errors if the
// frame exceeds MaxFrame or any field exceeds its protocol limit —
// the encoder enforces the same limits the decoder does, so every
// encodable frame is decodable.
func Encode(f Frame) ([]byte, error) {
	payload := Append(make([]byte, 0, 256), f)
	if len(payload) > MaxFrame {
		return nil, fmt.Errorf("wire: %d-byte frame exceeds MaxFrame %d", len(payload), MaxFrame)
	}
	// Round-trip the limits by decoding our own payload: cheap (frames
	// are small), and it guarantees Encode and Decode agree on validity.
	if _, err := Decode(payload); err != nil {
		return nil, fmt.Errorf("wire: frame violates protocol limits: %w", err)
	}
	out := make([]byte, 0, 4+len(payload))
	out = binary.BigEndian.AppendUint32(out, uint32(len(payload)))
	return append(out, payload...), nil
}

// WriteFrame encodes f and writes it to w.
func WriteFrame(w io.Writer, f Frame) error {
	b, err := Encode(f)
	if err != nil {
		return err
	}
	_, err = w.Write(b)
	return err
}

// ReadFrame reads one length-prefixed frame from r and decodes it. The
// length prefix is validated against MaxFrame before any buffer is
// allocated, so a hostile peer cannot trigger an oversized allocation
// with a forged prefix.
func ReadFrame(r io.Reader) (Frame, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n < 2 {
		return nil, fmt.Errorf("wire: %d-byte frame below minimum", n)
	}
	if n > MaxFrame {
		return nil, fmt.Errorf("wire: %d-byte frame exceeds MaxFrame %d", n, MaxFrame)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		if errors.Is(err, io.EOF) {
			err = io.ErrUnexpectedEOF
		}
		return nil, fmt.Errorf("wire: truncated %d-byte frame: %w", n, err)
	}
	return Decode(payload)
}

// ---- decoding ----

// reader is a strict cursor over one frame payload: every read is
// bounds-checked, every length is validated before allocation. ver is
// the frame's protocol revision, so version-gated fields know whether
// to expect themselves.
type reader struct {
	b   []byte
	ver byte
}

var errShort = errors.New("wire: truncated frame")

func (r *reader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.b)
	if n <= 0 {
		return 0, errShort
	}
	r.b = r.b[n:]
	return v, nil
}

func (r *reader) int64() (int64, error) {
	u, err := r.uvarint()
	if err != nil {
		return 0, err
	}
	return int64(u>>1) ^ -int64(u&1), nil
}

func (r *reader) u64() (uint64, error) {
	if len(r.b) < 8 {
		return 0, errShort
	}
	v := binary.BigEndian.Uint64(r.b)
	r.b = r.b[8:]
	return v, nil
}

func (r *reader) f64() (float64, error) {
	v, err := r.u64()
	return math.Float64frombits(v), err
}

func (r *reader) byte() (byte, error) {
	if len(r.b) < 1 {
		return 0, errShort
	}
	v := r.b[0]
	r.b = r.b[1:]
	return v, nil
}

func (r *reader) bool() (bool, error) {
	v, err := r.byte()
	if err != nil {
		return false, err
	}
	switch v {
	case 0:
		return false, nil
	case 1:
		return true, nil
	}
	return false, fmt.Errorf("wire: bool byte %d", v)
}

func (r *reader) string() (string, error) {
	n, err := r.uvarint()
	if err != nil {
		return "", err
	}
	if n > MaxString {
		return "", fmt.Errorf("wire: %d-byte string exceeds MaxString %d", n, MaxString)
	}
	if n > uint64(len(r.b)) {
		return "", errShort
	}
	s := string(r.b[:n])
	r.b = r.b[n:]
	return s, nil
}

// count validates a repeated-field length against the protocol limit
// and the bytes actually remaining (each element costs at least min
// bytes), so slice allocation is bounded by the input's real size.
func (r *reader) count(min int) (int, error) {
	n, err := r.uvarint()
	if err != nil {
		return 0, err
	}
	if n > MaxList {
		return 0, fmt.Errorf("wire: %d-element list exceeds MaxList %d", n, MaxList)
	}
	if min < 1 {
		min = 1
	}
	if n*uint64(min) > uint64(len(r.b)) {
		return 0, errShort
	}
	return int(n), nil
}

func (r *reader) recovery() (Recovery, error) {
	var rec Recovery
	for _, p := range [...]*int64{
		&rec.Attempts, &rec.Retries, &rec.Hedges, &rec.HedgeWins,
		&rec.Fallbacks, &rec.Injected, &rec.BackoffSimNS,
	} {
		v, err := r.int64()
		if err != nil {
			return Recovery{}, err
		}
		*p = v
	}
	return rec, nil
}

func (r *reader) pools() ([]PoolRow, error) {
	n, err := r.count(8)
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, nil
	}
	pools := make([]PoolRow, n)
	for i := range pools {
		p := &pools[i]
		if p.Name, err = r.string(); err != nil {
			return nil, err
		}
		for _, f := range [...]*int64{
			&p.Preforked, &p.Hits, &p.Misses, &p.Quarantined, &p.Repairs, &p.Idle,
		} {
			if *f, err = r.int64(); err != nil {
				return nil, err
			}
		}
		if p.Closed, err = r.bool(); err != nil {
			return nil, err
		}
	}
	return pools, nil
}

// Decode parses one frame payload (version byte, type byte, body). It
// enforces the protocol version, the per-field limits, and exact
// payload consumption; malformed input yields an error, never a panic
// or an attacker-sized allocation.
func Decode(payload []byte) (Frame, error) {
	if len(payload) > MaxFrame {
		return nil, fmt.Errorf("wire: %d-byte payload exceeds MaxFrame %d", len(payload), MaxFrame)
	}
	r := &reader{b: payload}
	ver, err := r.byte()
	if err != nil {
		return nil, err
	}
	if ver < MinVersion || ver > Version {
		return nil, fmt.Errorf("wire: protocol version %d, want %d..%d", ver, MinVersion, Version)
	}
	r.ver = ver
	t, err := r.byte()
	if err != nil {
		return nil, err
	}
	var f Frame
	switch Type(t) {
	case TypeHello:
		f, err = r.hello()
	case TypeRequest:
		f, err = r.request()
	case TypeResponse:
		f, err = r.response()
	case TypeSnapshotReq:
		var id uint64
		if id, err = r.u64(); err == nil {
			f = SnapshotReq{ID: id}
		}
	case TypeSnapshot:
		f, err = r.snapshot()
	case TypeDrain:
		var id uint64
		if id, err = r.u64(); err == nil {
			f = Drain{ID: id}
		}
	case TypeDrainAck:
		var ack DrainAck
		if ack.ID, err = r.u64(); err == nil {
			ack.Pools, err = r.pools()
			f = ack
		}
	case TypeMetricsReq:
		if r.ver < 2 {
			return nil, fmt.Errorf("wire: MetricsReq frame in version-%d payload", r.ver)
		}
		var id uint64
		if id, err = r.u64(); err == nil {
			f = MetricsReq{ID: id}
		}
	case TypeMetrics:
		if r.ver < 2 {
			return nil, fmt.Errorf("wire: Metrics frame in version-%d payload", r.ver)
		}
		f, err = r.metrics()
	default:
		return nil, fmt.Errorf("wire: unknown frame type %d", t)
	}
	if err != nil {
		return nil, err
	}
	if len(r.b) != 0 {
		return nil, fmt.Errorf("wire: %d trailing bytes after %T frame", len(r.b), f)
	}
	return f, nil
}

func (r *reader) hello() (Frame, error) {
	var h Hello
	var err error
	if h.Target, err = r.string(); err != nil {
		return nil, err
	}
	if h.Shards, err = r.int64(); err != nil {
		return nil, err
	}
	if h.Shards < 0 {
		return nil, fmt.Errorf("wire: negative shard count %d", h.Shards)
	}
	n, err := r.count(1)
	if err != nil {
		return nil, err
	}
	if n > 0 {
		h.Workloads = make([]string, n)
		for i := range h.Workloads {
			if h.Workloads[i], err = r.string(); err != nil {
				return nil, err
			}
		}
	}
	return h, nil
}

func (r *reader) request() (Frame, error) {
	var q Request
	var err error
	if q.ID, err = r.u64(); err != nil {
		return nil, err
	}
	if q.Tenant, err = r.string(); err != nil {
		return nil, err
	}
	if q.Workload, err = r.string(); err != nil {
		return nil, err
	}
	if q.Policy, err = r.string(); err != nil {
		return nil, err
	}
	if q.DeadlineNS, err = r.int64(); err != nil {
		return nil, err
	}
	if q.DeadlineNS < 0 {
		return nil, fmt.Errorf("wire: negative deadline %d", q.DeadlineNS)
	}
	n, err := r.count(1)
	if err != nil {
		return nil, err
	}
	if n > MaxShardSet {
		return nil, fmt.Errorf("wire: %d-shard set exceeds MaxShardSet %d", n, MaxShardSet)
	}
	if n > 0 {
		q.Shards = make([]uint32, n)
		for i := range q.Shards {
			s, err := r.uvarint()
			if err != nil {
				return nil, err
			}
			if s > math.MaxUint32 {
				return nil, fmt.Errorf("wire: shard index %d overflows uint32", s)
			}
			q.Shards[i] = uint32(s)
		}
	}
	if r.ver >= 2 {
		if q.Trace.ID, err = r.u64(); err != nil {
			return nil, err
		}
		if q.Trace.Parent, err = r.u64(); err != nil {
			return nil, err
		}
		if q.Trace.Sampled, err = r.bool(); err != nil {
			return nil, err
		}
	}
	return q, nil
}

func (r *reader) response() (Frame, error) {
	var p Response
	var err error
	if p.ID, err = r.u64(); err != nil {
		return nil, err
	}
	code, err := r.byte()
	if err != nil {
		return nil, err
	}
	if code > byte(CodeBadRequest) {
		return nil, fmt.Errorf("wire: unknown response code %d", code)
	}
	p.Code = Code(code)
	if p.Error, err = r.string(); err != nil {
		return nil, err
	}
	if (p.Code == CodeOK) != (p.Error == "") {
		return nil, fmt.Errorf("wire: code %d with error %q", p.Code, p.Error)
	}
	if p.ElapsedSimNS, err = r.int64(); err != nil {
		return nil, err
	}
	if p.EnergyJ, err = r.f64(); err != nil {
		return nil, err
	}
	if p.Recovery, err = r.recovery(); err != nil {
		return nil, err
	}
	hasResult, err := r.bool()
	if err != nil {
		return nil, err
	}
	if hasResult != (p.Code == CodeOK) {
		return nil, fmt.Errorf("wire: code %d with result=%v", p.Code, hasResult)
	}
	if hasResult {
		res := &Result{}
		if res.Policy, err = r.string(); err != nil {
			return nil, err
		}
		if res.ComputeEnergyJ, err = r.f64(); err != nil {
			return nil, err
		}
		if res.MovementEnergyJ, err = r.f64(); err != nil {
			return nil, err
		}
		for _, f := range [...]*int64{&res.OverheadNS, &res.Decisions, &res.InstCount, &res.InstMeanNS} {
			if *f, err = r.int64(); err != nil {
				return nil, err
			}
		}
		n, err := r.count(2)
		if err != nil {
			return nil, err
		}
		if n > 0 {
			res.Counters = make([]Counter, n)
			for i := range res.Counters {
				if res.Counters[i].Name, err = r.string(); err != nil {
					return nil, err
				}
				if res.Counters[i].Value, err = r.int64(); err != nil {
					return nil, err
				}
			}
		}
		p.Result = res
	}
	if r.ver >= 2 {
		if p.Spans, err = r.spans(); err != nil {
			return nil, err
		}
	}
	return p, nil
}

func (r *reader) attrs() ([]Attr, error) {
	n, err := r.count(2)
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, nil
	}
	attrs := make([]Attr, n)
	for i := range attrs {
		if attrs[i].Key, err = r.string(); err != nil {
			return nil, err
		}
		if attrs[i].Value, err = r.string(); err != nil {
			return nil, err
		}
	}
	return attrs, nil
}

func (r *reader) spans() ([]Span, error) {
	n, err := r.count(29)
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, nil
	}
	spans := make([]Span, n)
	for i := range spans {
		s := &spans[i]
		if s.TraceID, err = r.u64(); err != nil {
			return nil, err
		}
		if s.ID, err = r.u64(); err != nil {
			return nil, err
		}
		if s.Parent, err = r.u64(); err != nil {
			return nil, err
		}
		if s.Name, err = r.string(); err != nil {
			return nil, err
		}
		if s.Name == "" {
			return nil, errors.New("wire: span with empty name")
		}
		if s.SimStartNS, err = r.int64(); err != nil {
			return nil, err
		}
		if s.SimEndNS, err = r.int64(); err != nil {
			return nil, err
		}
		if s.SimEndNS < s.SimStartNS {
			return nil, fmt.Errorf("wire: span %q ends at %d before start %d", s.Name, s.SimEndNS, s.SimStartNS)
		}
		if s.Attrs, err = r.attrs(); err != nil {
			return nil, err
		}
		m, err := r.count(3)
		if err != nil {
			return nil, err
		}
		if m > 0 {
			s.Events = make([]SpanEvent, m)
			for j := range s.Events {
				e := &s.Events[j]
				if e.Name, err = r.string(); err != nil {
					return nil, err
				}
				if e.Name == "" {
					return nil, errors.New("wire: span event with empty name")
				}
				if e.SimNS, err = r.int64(); err != nil {
					return nil, err
				}
				if e.Attrs, err = r.attrs(); err != nil {
					return nil, err
				}
			}
		}
	}
	return spans, nil
}

func (r *reader) metrics() (Frame, error) {
	var m Metrics
	var err error
	if m.ID, err = r.u64(); err != nil {
		return nil, err
	}
	if m.Target, err = r.string(); err != nil {
		return nil, err
	}
	n, err := r.count(3)
	if err != nil {
		return nil, err
	}
	if n > 0 {
		m.Samples = make([]MetricSample, n)
		for i := range m.Samples {
			s := &m.Samples[i]
			if s.Name, err = r.string(); err != nil {
				return nil, err
			}
			if s.Name == "" {
				return nil, errors.New("wire: metric sample with empty name")
			}
			if s.Labels, err = r.attrs(); err != nil {
				return nil, err
			}
			kind, err := r.byte()
			if err != nil {
				return nil, err
			}
			if kind > byte(MetricHistogram) {
				return nil, fmt.Errorf("wire: unknown metric kind %d", kind)
			}
			s.Kind = MetricKind(kind)
			if s.Kind == MetricHistogram {
				blobLen, err := r.uvarint()
				if err != nil {
					return nil, err
				}
				if blobLen > uint64(len(r.b)) {
					return nil, errShort
				}
				if s.Hist, err = histo.Decode(r.b[:blobLen]); err != nil {
					return nil, fmt.Errorf("wire: metric histogram: %w", err)
				}
				r.b = r.b[blobLen:]
			} else if s.Value, err = r.f64(); err != nil {
				return nil, err
			}
		}
	}
	return m, nil
}

func (r *reader) snapshot() (Frame, error) {
	var s Snapshot
	var err error
	if s.ID, err = r.u64(); err != nil {
		return nil, err
	}
	if s.Target, err = r.string(); err != nil {
		return nil, err
	}
	n, err := r.count(16)
	if err != nil {
		return nil, err
	}
	if n > 0 {
		s.Tenants = make([]TenantRow, n)
		for i := range s.Tenants {
			t := &s.Tenants[i]
			if t.Tenant, err = r.string(); err != nil {
				return nil, err
			}
			for _, f := range [...]*int64{
				&t.Requests, &t.Errors, &t.Shed, &t.Expired, &t.Shared, &t.Attained,
			} {
				if *f, err = r.int64(); err != nil {
					return nil, err
				}
			}
			if t.Recovery, err = r.recovery(); err != nil {
				return nil, err
			}
			if t.SimNS, err = r.int64(); err != nil {
				return nil, err
			}
			if t.EnergyJ, err = r.f64(); err != nil {
				return nil, err
			}
		}
	}
	if s.Pools, err = r.pools(); err != nil {
		return nil, err
	}
	blobLen, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if blobLen > uint64(len(r.b)) {
		return nil, errShort
	}
	s.Wall, err = histo.Decode(r.b[:blobLen])
	if err != nil {
		return nil, fmt.Errorf("wire: snapshot histogram: %w", err)
	}
	r.b = r.b[blobLen:]
	return s, nil
}
