package cluster

import "conduit/internal/sim"

// HedgePick selects the shard worth hedging after a scatter completes:
// the slowest shard, but only when it is a genuine straggler — its
// elapsed time exceeds threshold times the fastest shard's. In a
// homogeneous cluster the un-degraded shards finish in near-identical
// simulated time, so a straggler test against the minimum separates a
// degraded (injected-slow, contended) shard from ordinary plan skew.
// Ties break to the lowest index; the decision is a pure function of
// the inputs, keeping hedged runs deterministic. It returns -1 when no
// shard qualifies (including clusters of fewer than two shards, where a
// duplicate dispatch could only duplicate the whole request).
func HedgePick(elapsed []sim.Time, threshold float64) int {
	if len(elapsed) < 2 {
		return -1
	}
	if threshold <= 1 {
		threshold = 2
	}
	slowest, fastest := 0, 0
	for i, e := range elapsed {
		if e > elapsed[slowest] {
			slowest = i
		}
		if e < elapsed[fastest] {
			fastest = i
		}
	}
	if float64(elapsed[slowest]) > threshold*float64(elapsed[fastest]) {
		return slowest
	}
	return -1
}
