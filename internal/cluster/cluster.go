package cluster

import (
	"errors"
	"fmt"

	"conduit/internal/compiler"
	"conduit/internal/config"
	"conduit/internal/isa"
	"conduit/internal/sim"
)

// ErrTooManyShards reports a plan that asks for more shards than the
// workload has vector blocks; shard-count sweeps use it (via errors.Is)
// to stop scaling a workload out instead of failing the whole sweep.
var ErrTooManyShards = errors.New("shard count exceeds workload vector blocks")

// Plan is a row-block partition of one workload across N shards. Cuts are
// lane indices into the shared lane space of the partitionable arrays:
// shard i owns lanes [Cuts[i], Cuts[i+1]). Every interior cut is aligned
// to a vector block (PageLanes), so a shard's pages hold exactly the
// bytes the same pages hold on a single device — the compiler lowers Ref
// offsets to in-page rotations, never cross-page reads, which is what
// makes block-aligned slicing exact rather than approximate.
type Plan struct {
	Shards    int
	PageLanes int // lanes per vector block (PageSize / Elem)
	Lanes     int // shared length of the partitionable arrays
	Blocks    int // vector blocks in the partitioned lane space
	Cuts      []int

	// Partitioned and Broadcast list the source's arrays by class, in
	// declaration order: partitioned arrays slice row-block-wise, while
	// broadcast arrays are replicated whole to every shard (shared
	// tables: key schedules, filter banks, model weights).
	Partitioned []string
	Broadcast   []string
}

// PlanShards partitions src's arrays for the given shard count under the
// partition predicate (nil partitions every array). It validates the
// source, requires every partitionable array to share one length (the
// row-block lane space), and refuses plans with more shards than vector
// blocks — a shard that owns no block would simulate an empty device.
func PlanShards(src *compiler.Source, pageSize, shards int, partition func(array string) bool) (*Plan, error) {
	if shards < 1 {
		return nil, fmt.Errorf("cluster: shard count %d must be >= 1", shards)
	}
	if err := src.Validate(); err != nil {
		return nil, err
	}
	elem := src.Elem()
	if pageSize <= 0 || pageSize%elem != 0 {
		return nil, fmt.Errorf("cluster: page size %d incompatible with element size %d", pageSize, elem)
	}
	if partition == nil {
		partition = func(string) bool { return true }
	}
	p := &Plan{Shards: shards, PageLanes: pageSize / elem}
	lanes := -1
	for _, a := range src.Arrays {
		if !partition(a.Name) {
			p.Broadcast = append(p.Broadcast, a.Name)
			continue
		}
		if lanes >= 0 && a.Len != lanes {
			return nil, fmt.Errorf("cluster: partitionable arrays disagree on length (%q has %d lanes, want %d); mark the odd one broadcast",
				a.Name, a.Len, lanes)
		}
		lanes = a.Len
		p.Partitioned = append(p.Partitioned, a.Name)
	}
	if lanes < 0 {
		return nil, fmt.Errorf("cluster: workload %q has no partitionable arrays — nothing to shard", src.Name)
	}
	p.Lanes = lanes
	p.Blocks = (lanes + p.PageLanes - 1) / p.PageLanes
	if shards > p.Blocks {
		return nil, fmt.Errorf("cluster: %d shards over the %d vector blocks of %q (%d lanes) — grow the workload or reduce -shards: %w",
			shards, p.Blocks, src.Name, lanes, ErrTooManyShards)
	}
	p.Cuts = make([]int, shards+1)
	for i := 1; i < shards; i++ {
		p.Cuts[i] = (i * p.Blocks / shards) * p.PageLanes
	}
	p.Cuts[shards] = lanes
	return p, nil
}

// ShardLanes reports the lane range shard i owns: [start, end).
func (p *Plan) ShardLanes(i int) (start, end int) { return p.Cuts[i], p.Cuts[i+1] }

// Shard derives shard i's source: partitionable arrays sliced to the
// shard's row block, broadcast arrays replicated whole, loops clipped to
// the lanes the shard owns (a loop that touches no partitionable array
// replicates unchanged — it is shared work every shard performs, like a
// key schedule), and opaque scalar regions apportioned by lane share with
// telescoping cuts so the shards' cycles sum exactly to the original.
//
// A 1-shard plan returns src itself, untouched: the 1-shard cluster is
// *definitionally* the single-device workload, which anchors the 1-shard
// == Deployment.Run byte-identity guarantee.
func (p *Plan) Shard(src *compiler.Source, i int) (*compiler.Source, error) {
	if i < 0 || i >= p.Shards {
		return nil, fmt.Errorf("cluster: shard %d out of range [0, %d)", i, p.Shards)
	}
	if p.Shards == 1 {
		return src, nil
	}
	start, end := p.ShardLanes(i)
	elem := src.Elem()
	partitioned := make(map[string]bool, len(p.Partitioned))
	for _, name := range p.Partitioned {
		partitioned[name] = true
	}

	out := &compiler.Source{Name: fmt.Sprintf("%s@shard%d/%d", src.Name, i, p.Shards)}
	for _, a := range src.Arrays {
		na := *a
		if partitioned[a.Name] {
			na.Len = end - start
			if a.Data != nil {
				na.Data = a.Data[start*elem : end*elem]
			}
		}
		out.Arrays = append(out.Arrays, &na)
	}

	for _, st := range src.Stmts {
		switch s := st.(type) {
		case compiler.Loop:
			if !touchesPartitioned(s, partitioned) {
				out.Stmts = append(out.Stmts, s)
				continue
			}
			// Clip the iteration space to the shard's lanes. Loops always
			// start at lane 0, so the shard-local count is the overlap of
			// [0, N) with [start, end); a loop whose lanes all live on
			// other shards disappears here entirely.
			n := min(s.N, end) - start
			if n <= 0 {
				continue
			}
			s.N = n
			out.Stmts = append(out.Stmts, s)
		case compiler.ScalarWork:
			// Telescoping apportionment: shard i gets the i'th slice of
			// the cycle budget, and Σ_i slice_i == Cycles exactly.
			s.Cycles = s.Cycles*int64(end)/int64(p.Lanes) - s.Cycles*int64(start)/int64(p.Lanes)
			out.Stmts = append(out.Stmts, s)
		default:
			return nil, fmt.Errorf("cluster: unknown statement %T", st)
		}
	}
	return out, nil
}

// touchesPartitioned reports whether any array the loop reads or writes
// is partitioned — the condition under which its iteration space shards.
func touchesPartitioned(l compiler.Loop, partitioned map[string]bool) bool {
	for _, a := range l.Body {
		if partitioned[a.Target] {
			return true
		}
		for _, r := range compiler.RefsOf(a.Value) {
			if partitioned[r.Name] {
				return true
			}
		}
	}
	return false
}

// ReducePages counts the distinct reduce-destination pages of a compiled
// shard program — the partial-result pages the host must gather and
// combine after a sharded run of a reduce-shaped kernel.
func ReducePages(prog *isa.Program) int {
	seen := make(map[isa.PageID]bool)
	for i := range prog.Insts {
		if prog.Insts[i].Op == isa.OpReduceAdd {
			seen[prog.Insts[i].Dst] = true
		}
	}
	return len(seen)
}

// Reduction is the modeled host-side aggregation step of a sharded run:
// each shard holds one partial page per reduce destination it executed,
// the host gathers them over the (shared, serializing) PCIe link and
// streams them through host memory combining lane-wise. The model prices
// that from the Table-2 constants; it is zero for 1-shard plans and for
// kernels with no reduce-shaped output, which keeps non-reducing merges
// a pure max/sum.
type Reduction struct {
	Pages     int   // partial reduce pages gathered, summed across shards
	Bytes     int64 // total bytes gathered over the host link
	Time      sim.Time
	ComputeJ  float64
	MovementJ float64
}

// ReduceModel prices the host-side reduction of totalPages partial pages
// gathered across a shards-device cluster under cfg. totalPages is the
// sum of every shard's ReducePages — not a per-shard count — so uneven
// plans (shards owning different block counts emit different numbers of
// partial pages) are priced exactly.
func ReduceModel(cfg *config.Config, shards, totalPages int) Reduction {
	if shards <= 1 || totalPages <= 0 {
		return Reduction{}
	}
	r := Reduction{
		Pages: totalPages,
		Bytes: int64(totalPages) * int64(cfg.SSD.PageSize),
	}
	gather := cfg.SSD.PCIeTransferTime(int(r.Bytes))
	combine := sim.Time(float64(r.Bytes) / cfg.Host.MemBandwidth * 1e9)
	r.Time = gather + combine
	r.MovementJ = float64(r.Bytes) * (cfg.Host.EPCIePerByte + cfg.Host.EHostPerByte)
	r.ComputeJ = cfg.Host.CPUPowerWatts * float64(combine) / 1e9
	return r
}
