package cluster

import (
	"testing"

	"conduit/internal/sim"
)

func TestHedgePick(t *testing.T) {
	cases := []struct {
		name      string
		elapsed   []sim.Time
		threshold float64
		want      int
	}{
		{"no straggler", []sim.Time{100, 110, 105}, 2, -1},
		{"clear straggler", []sim.Time{100, 410, 105}, 2, 1},
		{"at threshold not over", []sim.Time{100, 200}, 2, -1},
		{"tie breaks low", []sim.Time{400, 100, 400}, 2, 0},
		{"single shard", []sim.Time{100}, 2, -1},
		{"empty", nil, 2, -1},
		{"default threshold", []sim.Time{100, 250}, 0, 1},
	}
	for _, c := range cases {
		if got := HedgePick(c.elapsed, c.threshold); got != c.want {
			t.Errorf("%s: HedgePick(%v, %v) = %d, want %d", c.name, c.elapsed, c.threshold, got, c.want)
		}
	}
}
