package cluster

import (
	"reflect"
	"testing"

	"conduit/internal/compiler"
	"conduit/internal/config"
	"conduit/internal/isa"
)

// testSource builds a small mixed workload: two partitionable data
// arrays, one broadcast table, a full-span vector loop, a partial-span
// scalar loop, and an opaque control region.
func testSource(lanes int) *compiler.Source {
	data := make([]byte, lanes)
	for i := range data {
		data[i] = byte(i*7 + 1)
	}
	table := make([]byte, lanes)
	for i := range table {
		table[i] = byte(i * 3)
	}
	return &compiler.Source{
		Name: "cluster-test",
		Arrays: []*compiler.Array{
			{Name: "in", Elem: 1, Len: lanes, Input: true, Data: data},
			{Name: "out", Elem: 1, Len: lanes},
			{Name: "table", Elem: 1, Len: lanes, Input: true, Data: table},
		},
		Stmts: []compiler.Stmt{
			compiler.Loop{Name: "map", N: lanes, Body: []compiler.Assign{
				{Target: "out", Value: compiler.Bin{Op: compiler.OpXor,
					X: compiler.Ref{Name: "in"}, Y: compiler.Ref{Name: "table"}}},
			}},
			compiler.Loop{Name: "head", N: lanes / 4, ForceScalar: true, Body: []compiler.Assign{
				{Target: "out", Value: compiler.Bin{Op: compiler.OpAdd,
					X: compiler.Ref{Name: "out"}, Y: compiler.Lit{Value: 1}}},
			}},
			compiler.ScalarWork{Name: "control", Cycles: 1 << 20},
		},
	}
}

func plan(t *testing.T, src *compiler.Source, pageSize, shards int, part func(string) bool) *Plan {
	t.Helper()
	p, err := PlanShards(src, pageSize, shards, part)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func isTable(name string) bool { return name != "table" }

func TestPlanCutsBlockAligned(t *testing.T) {
	const pageSize = 256 // 256 lanes per block at Elem 1
	src := testSource(5 * pageSize)
	p := plan(t, src, pageSize, 3, isTable)
	if p.Blocks != 5 || p.Lanes != 5*pageSize {
		t.Fatalf("blocks=%d lanes=%d, want 5, %d", p.Blocks, p.Lanes, 5*pageSize)
	}
	if got, want := p.Partitioned, []string{"in", "out"}; !reflect.DeepEqual(got, want) {
		t.Fatalf("partitioned = %v, want %v", got, want)
	}
	if got, want := p.Broadcast, []string{"table"}; !reflect.DeepEqual(got, want) {
		t.Fatalf("broadcast = %v, want %v", got, want)
	}
	if p.Cuts[0] != 0 || p.Cuts[len(p.Cuts)-1] != p.Lanes {
		t.Fatalf("cuts do not span the lane space: %v", p.Cuts)
	}
	total := 0
	for i := 0; i < p.Shards; i++ {
		s, e := p.ShardLanes(i)
		if s >= e {
			t.Fatalf("shard %d empty: [%d, %d)", i, s, e)
		}
		if s%p.PageLanes != 0 {
			t.Fatalf("shard %d start %d not block-aligned", i, s)
		}
		total += e - s
	}
	if total != p.Lanes {
		t.Fatalf("shards cover %d lanes, want %d", total, p.Lanes)
	}
}

func TestPlanErrors(t *testing.T) {
	const pageSize = 256
	src := testSource(2 * pageSize)
	if _, err := PlanShards(src, pageSize, 0, nil); err == nil {
		t.Error("shards=0 accepted")
	}
	if _, err := PlanShards(src, pageSize, 3, nil); err == nil {
		t.Error("more shards than blocks accepted")
	}
	if _, err := PlanShards(src, pageSize, 2, func(string) bool { return false }); err == nil {
		t.Error("all-broadcast plan accepted")
	}
	// Partitionable arrays of different lengths cannot share a row-block
	// lane space.
	uneven := testSource(2 * pageSize)
	uneven.Arrays[2].Len = pageSize
	uneven.Arrays[2].Data = uneven.Arrays[2].Data[:pageSize]
	if _, err := PlanShards(uneven, pageSize, 2, nil); err == nil {
		t.Error("length-mismatched partition accepted")
	}
}

// TestShardSingleIsOriginal: a 1-shard plan returns the identical Source
// value — not a copy — so 1-shard cluster compilation is definitionally
// the single-device compilation.
func TestShardSingleIsOriginal(t *testing.T) {
	const pageSize = 256
	src := testSource(4 * pageSize)
	p := plan(t, src, pageSize, 1, isTable)
	got, err := p.Shard(src, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got != src {
		t.Fatal("1-shard Shard did not return the original Source")
	}
}

func TestShardSlicing(t *testing.T) {
	const pageSize = 256
	lanes := 4 * pageSize
	src := testSource(lanes)
	p := plan(t, src, pageSize, 2, isTable)
	for i := 0; i < 2; i++ {
		s, err := p.Shard(src, i)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("shard %d invalid: %v", i, err)
		}
		start, end := p.ShardLanes(i)
		in := s.Arrays[0]
		if in.Len != end-start {
			t.Fatalf("shard %d 'in' len = %d, want %d", i, in.Len, end-start)
		}
		if !reflect.DeepEqual(in.Data, src.Arrays[0].Data[start:end]) {
			t.Fatalf("shard %d 'in' data is not the [%d, %d) slice", i, start, end)
		}
		// Broadcast arrays replicate whole.
		if table := s.Arrays[2]; table.Len != lanes || !reflect.DeepEqual(table.Data, src.Arrays[2].Data) {
			t.Fatalf("shard %d broadcast table was sliced", i)
		}
	}

	// The full-span loop clips to each shard's lane count; the
	// quarter-span loop lives entirely in shard 0 and vanishes from
	// shard 1 (lanes/4 = one block < shard 0's two blocks).
	s0, _ := p.Shard(src, 0)
	s1, _ := p.Shard(src, 1)
	if l := s0.Stmts[0].(compiler.Loop); l.N != pageSize*2 {
		t.Fatalf("shard 0 map loop N = %d, want %d", l.N, pageSize*2)
	}
	if l := s0.Stmts[1].(compiler.Loop); l.N != lanes/4 {
		t.Fatalf("shard 0 head loop N = %d, want %d", l.N, lanes/4)
	}
	var s1Loops []string
	for _, st := range s1.Stmts {
		if l, ok := st.(compiler.Loop); ok {
			s1Loops = append(s1Loops, l.Name)
		}
	}
	if !reflect.DeepEqual(s1Loops, []string{"map"}) {
		t.Fatalf("shard 1 loops = %v, want [map] only", s1Loops)
	}
}

// TestShardScalarWorkTelescopes: apportioned scalar cycles sum exactly to
// the original budget across shards.
func TestShardScalarWorkTelescopes(t *testing.T) {
	const pageSize = 256
	src := testSource(5 * pageSize) // uneven: 5 blocks across 3 shards
	p := plan(t, src, pageSize, 3, isTable)
	var sum int64
	for i := 0; i < 3; i++ {
		s, err := p.Shard(src, i)
		if err != nil {
			t.Fatal(err)
		}
		sum += s.Stmts[len(s.Stmts)-1].(compiler.ScalarWork).Cycles
	}
	want := src.Stmts[len(src.Stmts)-1].(compiler.ScalarWork).Cycles
	if sum != want {
		t.Fatalf("scalar cycles sum to %d across shards, want %d", sum, want)
	}
}

// TestShardsCompile: every shard of every evaluated partition compiles,
// and shard programs are smaller than the single-device program.
func TestShardsCompile(t *testing.T) {
	const pageSize = 256
	src := testSource(6 * pageSize)
	full, err := compiler.Compile(src, pageSize)
	if err != nil {
		t.Fatal(err)
	}
	p := plan(t, src, pageSize, 3, isTable)
	for i := 0; i < 3; i++ {
		s, err := p.Shard(src, i)
		if err != nil {
			t.Fatal(err)
		}
		c, err := compiler.Compile(s, pageSize)
		if err != nil {
			t.Fatalf("shard %d: %v", i, err)
		}
		if len(c.Prog.Insts) >= len(full.Prog.Insts) {
			t.Fatalf("shard %d program has %d insts, not smaller than full %d",
				i, len(c.Prog.Insts), len(full.Prog.Insts))
		}
	}
}

func TestReducePagesAndModel(t *testing.T) {
	const pageSize = 256
	lanes := 2 * pageSize
	src := &compiler.Source{
		Name: "reduce-test",
		Arrays: []*compiler.Array{
			{Name: "v", Elem: 1, Len: lanes, Input: true, Data: make([]byte, lanes)},
			{Name: "acc", Elem: 1, Len: lanes},
		},
		Stmts: []compiler.Stmt{
			compiler.Loop{Name: "sum", N: lanes, Body: []compiler.Assign{
				{Target: "acc", Reduce: true, Value: compiler.Ref{Name: "v"}},
			}},
		},
	}
	c, err := compiler.Compile(src, pageSize)
	if err != nil {
		t.Fatal(err)
	}
	if got := ReducePages(c.Prog); got != 2 {
		t.Fatalf("ReducePages = %d, want 2 (one per block)", got)
	}
	plain, err := compiler.Compile(testSource(2*pageSize), pageSize)
	if err != nil {
		t.Fatal(err)
	}
	if got := ReducePages(plain.Prog); got != 0 {
		t.Fatalf("non-reducing program reports %d reduce pages", got)
	}

	cfg := config.TestScale()
	if r := ReduceModel(&cfg, 1, 4); r != (Reduction{}) {
		t.Fatalf("1-shard reduction priced: %+v", r)
	}
	if r := ReduceModel(&cfg, 4, 0); r != (Reduction{}) {
		t.Fatalf("no-reduce reduction priced: %+v", r)
	}
	// totalPages is the across-shard sum: 4 shards contributing 2 pages
	// total gather exactly 2 pages, regardless of how unevenly the
	// shards contributed them.
	r := ReduceModel(&cfg, 4, 2)
	if r.Bytes != int64(2*cfg.SSD.PageSize) {
		t.Fatalf("reduction bytes = %d, want %d", r.Bytes, 2*cfg.SSD.PageSize)
	}
	if r.Time <= 0 || r.ComputeJ <= 0 || r.MovementJ <= 0 {
		t.Fatalf("reduction not priced: %+v", r)
	}
	// Deterministic: same inputs, bit-identical outputs.
	if r2 := ReduceModel(&cfg, 4, 2); r2 != r {
		t.Fatalf("reduction model not deterministic: %+v vs %+v", r, r2)
	}
	_ = isa.OpReduceAdd // the op the model exists for
}
