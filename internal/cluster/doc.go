// Package cluster shards a compiled workload across multiple independent
// simulated Conduit SSDs — the scale-out axis the single-device simulator
// lacks: one drive caps dataset capacity and forces every request through
// one device's calendars, while near-data systems win precisely by
// co-locating each computation with the shard that holds its data (CODA,
// arXiv:1710.09517; multi-device coordination and result aggregation are
// the open problems the on-disk-processing survey arXiv:1709.02718
// identifies).
//
// The package owns the three mechanical pieces of scale-out; the public
// conduit.Cluster facade composes them with Deployment/DevicePool:
//
//   - Planning (PlanShards): split the shared lane space of a source's
//     partitionable arrays into contiguous, vector-block-aligned row
//     blocks — one per shard. Block alignment is what makes sharding
//     exact: the compiler lowers Ref offsets to in-page rotations, so a
//     page computes the same bytes no matter which device holds it.
//   - Slicing (Plan.Shard): derive shard i's Source — partitionable
//     arrays sliced to their block, broadcast arrays replicated whole,
//     loops clipped to the lanes the shard owns, opaque scalar work
//     apportioned by lane share. A 1-shard plan returns the original
//     Source unchanged, which is the root of the 1-shard == single-device
//     byte-identity proof.
//   - Reduction modeling (ReducePages, ReduceModel): reduce-shaped
//     kernels leave one partial page per reduce destination on every
//     shard; the host must gather them over PCIe and combine them. The
//     model prices that gather + combine step in time and energy from the
//     Table-2 constants, and is charged once on the merged result.
//
// Merging the per-shard partial results lives with the measurement types
// it combines: stats.MergeReservoirs (latency-sample union),
// stats.Counters.Merge (substrate-activity sums), and energy.MergeShards
// (fixed-order energy sums). The parallel phase of the merged run takes
// the max over shards — shards execute concurrently on independent
// devices — and every merge step is a deterministic function of the
// per-shard results in shard-index order, so a gathered cluster result is
// byte-identical whether the shards actually ran concurrently or one by
// one.
package cluster
