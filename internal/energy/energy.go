package energy

import "sort"

// Account tallies energy in joules, keyed by source. The zero value is not
// usable; call NewAccount.
type Account struct {
	compute  map[string]float64
	movement map[string]float64
}

// NewAccount returns an empty account.
func NewAccount() *Account {
	return &Account{
		compute:  make(map[string]float64),
		movement: make(map[string]float64),
	}
}

// Compute records j joules of computation energy attributed to source
// (e.g. "ifp", "pud", "isp", "cpu", "gpu").
func (a *Account) Compute(source string, j float64) {
	if j < 0 {
		panic("energy: negative computation energy")
	}
	a.compute[source] += j
}

// Move records j joules of data-movement energy attributed to path
// (e.g. "flash-channel", "dram-bus", "pcie").
func (a *Account) Move(path string, j float64) {
	if j < 0 {
		panic("energy: negative movement energy")
	}
	a.movement[path] += j
}

// ComputeTotal reports total computation energy in joules.
func (a *Account) ComputeTotal() float64 { return total(a.compute) }

// MovementTotal reports total data-movement energy in joules.
func (a *Account) MovementTotal() float64 { return total(a.movement) }

// Total reports all energy in joules.
func (a *Account) Total() float64 { return a.ComputeTotal() + a.MovementTotal() }

// ComputeBy reports computation energy for one source.
func (a *Account) ComputeBy(source string) float64 { return a.compute[source] }

// MoveBy reports movement energy for one path.
func (a *Account) MoveBy(path string) float64 { return a.movement[path] }

// Sources returns all compute sources in sorted order.
func (a *Account) Sources() []string { return keys(a.compute) }

// Paths returns all movement paths in sorted order.
func (a *Account) Paths() []string { return keys(a.movement) }

// Reset clears the account.
func (a *Account) Reset() {
	a.compute = make(map[string]float64)
	a.movement = make(map[string]float64)
}

// Clone returns an independent copy of the account.
func (a *Account) Clone() *Account {
	c := NewAccount()
	for k, v := range a.compute {
		c.compute[k] = v
	}
	for k, v := range a.movement {
		c.movement[k] = v
	}
	return c
}

// MergeShards sums per-shard (compute, movement) energy pairs in slice
// order. Float addition is not associative, so the fixed shard-index
// order — not completion order — is what keeps a cluster's gathered
// energy totals byte-identical between concurrent and serial shard
// execution. Both slices must have the same length.
func MergeShards(compute, movement []float64) (computeJ, movementJ float64) {
	if len(compute) != len(movement) {
		panic("energy: MergeShards slice lengths differ")
	}
	for i := range compute {
		computeJ += compute[i]
		movementJ += movement[i]
	}
	return computeJ, movementJ
}

// total sums in sorted key order: float addition is not associative, so
// map-order summation would make otherwise identical runs differ in the
// last bits — run-for-run determinism requires a fixed order.
func total(m map[string]float64) float64 {
	var sum float64
	for _, k := range keys(m) {
		sum += m[k]
	}
	return sum
}

func keys(m map[string]float64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
