package energy

import "testing"

func TestMergeShardsSums(t *testing.T) {
	c, m := MergeShards([]float64{1.5, 2.25, 0.5}, []float64{0.125, 4, 8})
	if c != 4.25 {
		t.Fatalf("compute = %v, want 4.25", c)
	}
	if m != 12.125 {
		t.Fatalf("movement = %v, want 12.125", m)
	}
}

// TestMergeShardsSingleIdentity: a 1-shard merge returns the inputs
// bit-exactly — the cluster layer's 1-shard == single-device proof
// requires it.
func TestMergeShardsSingleIdentity(t *testing.T) {
	const compute, movement = 0.1234567890123, 9.87654321e-4
	c, m := MergeShards([]float64{compute}, []float64{movement})
	if c != compute || m != movement {
		t.Fatalf("single-shard merge changed values: %v, %v", c, m)
	}
}

// TestMergeShardsOrderFixed: the sum is taken in slice order, so two
// calls over the same slices are bit-identical (float addition is not
// associative; this is the determinism contract).
func TestMergeShardsOrderFixed(t *testing.T) {
	compute := []float64{1e-9, 1e9, -1e9, 3.3e-7}
	movement := []float64{2e8, 1e-8, 5e-3, -2e8}
	c1, m1 := MergeShards(compute, movement)
	c2, m2 := MergeShards(compute, movement)
	if c1 != c2 || m1 != m2 {
		t.Fatal("repeated merges over identical inputs differ")
	}
}

func TestMergeShardsLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch did not panic")
		}
	}()
	MergeShards([]float64{1}, []float64{1, 2})
}
