package energy

import (
	"math"
	"testing"
)

func TestAccountTotals(t *testing.T) {
	a := NewAccount()
	a.Compute("ifp", 1e-6)
	a.Compute("ifp", 2e-6)
	a.Compute("isp", 1e-6)
	a.Move("flash-channel", 5e-6)
	a.Move("pcie", 1e-6)

	if got := a.ComputeBy("ifp"); math.Abs(got-3e-6) > 1e-18 {
		t.Errorf("ComputeBy(ifp) = %v, want 3µJ", got)
	}
	if got := a.ComputeTotal(); math.Abs(got-4e-6) > 1e-18 {
		t.Errorf("ComputeTotal = %v, want 4µJ", got)
	}
	if got := a.MovementTotal(); math.Abs(got-6e-6) > 1e-18 {
		t.Errorf("MovementTotal = %v, want 6µJ", got)
	}
	if got := a.Total(); math.Abs(got-10e-6) > 1e-18 {
		t.Errorf("Total = %v, want 10µJ", got)
	}
}

func TestAccountKeysSorted(t *testing.T) {
	a := NewAccount()
	a.Compute("z", 1)
	a.Compute("a", 1)
	a.Move("m", 1)
	srcs := a.Sources()
	if len(srcs) != 2 || srcs[0] != "a" || srcs[1] != "z" {
		t.Fatalf("Sources = %v, want sorted [a z]", srcs)
	}
	if paths := a.Paths(); len(paths) != 1 || paths[0] != "m" {
		t.Fatalf("Paths = %v", paths)
	}
}

func TestAccountReset(t *testing.T) {
	a := NewAccount()
	a.Compute("x", 1)
	a.Move("y", 1)
	a.Reset()
	if a.Total() != 0 {
		t.Fatal("Reset did not clear the account")
	}
}

func TestNegativeEnergyPanics(t *testing.T) {
	a := NewAccount()
	defer func() {
		if recover() == nil {
			t.Fatal("negative energy should panic")
		}
	}()
	a.Compute("x", -1)
}
