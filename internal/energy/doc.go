// Package energy accumulates the energy consumption of the simulated
// system, split into computation energy and data-movement energy — the two
// components of each bar in Fig. 7(b) of the paper.
//
// Every substrate (NAND, DRAM, controller cores, host, interconnects)
// records into a shared Account; the experiment harness reads totals and
// the movement/compute breakdown.
package energy
