// Package metrics is a small registry of named, labeled series —
// counters, gauges, and the repo's histo histograms — with a canonical
// snapshot order, exact merging, and a text exposition format.
//
// The serving tiers fill a registry at scrape time from their existing
// deterministic accounting (tenant totals, pool counters, breaker
// states, latency histograms), so the hot path pays nothing and the
// byte-pinned report tables stay untouched. Targets ship their samples
// over the wire in a Metrics frame; the router merges per-target
// snapshots — counters and gauges sum, histograms merge — into one
// fleet scrape.
//
// Samples are identified by (name, sorted label set). Snapshot order is
// lexicographic over that identity, so two registries filled from the
// same state expose byte-identical text.
package metrics

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"

	"conduit/internal/histo"
)

// Label is one key/value dimension of a series.
type Label struct {
	Key   string
	Value string
}

// Kind tags a sample's type.
type Kind uint8

// The sample kinds.
const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

// Sample is one series' value at scrape time.
type Sample struct {
	Name   string
	Labels []Label // sorted by key
	Kind   Kind
	// Value carries counters (monotonic totals) and gauges (point-in-
	// time levels); zero for histograms.
	Value float64
	// Hist is non-nil iff Kind is KindHistogram.
	Hist *histo.Histogram
}

// Registry accumulates samples. The zero value is not usable; call New.
type Registry struct {
	mu      sync.Mutex
	samples map[string]*Sample
}

// New returns an empty registry.
func New() *Registry {
	return &Registry{samples: make(map[string]*Sample)}
}

// seriesKey is the canonical identity of a (name, labels) pair; it
// doubles as the sort key for Snapshot order.
func seriesKey(name string, labels []Label) string {
	if len(labels) == 0 {
		return name
	}
	var b strings.Builder
	b.WriteString(name)
	for _, l := range labels {
		b.WriteByte(0)
		b.WriteString(l.Key)
		b.WriteByte(0)
		b.WriteString(l.Value)
	}
	return b.String()
}

func sortLabels(labels []Label) []Label {
	if len(labels) <= 1 {
		return labels
	}
	out := make([]Label, len(labels))
	copy(out, labels)
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// lookup finds or creates the series. A kind conflict on an existing
// series returns nil: the first writer wins and the conflicting write
// is dropped rather than corrupting the series.
func (r *Registry) lookup(name string, kind Kind, labels []Label) *Sample {
	labels = sortLabels(labels)
	key := seriesKey(name, labels)
	s, ok := r.samples[key]
	if !ok {
		s = &Sample{Name: name, Labels: labels, Kind: kind}
		if kind == KindHistogram {
			s.Hist = histo.New()
		}
		r.samples[key] = s
		return s
	}
	if s.Kind != kind {
		return nil
	}
	return s
}

// Count adds n to the named counter.
func (r *Registry) Count(name string, n int64, labels ...Label) {
	r.mu.Lock()
	if s := r.lookup(name, KindCounter, labels); s != nil {
		s.Value += float64(n)
	}
	r.mu.Unlock()
}

// SetGauge sets the named gauge.
func (r *Registry) SetGauge(name string, v float64, labels ...Label) {
	r.mu.Lock()
	if s := r.lookup(name, KindGauge, labels); s != nil {
		s.Value = v
	}
	r.mu.Unlock()
}

// MergeHist folds h into the named histogram series. h is not retained.
func (r *Registry) MergeHist(name string, h *histo.Histogram, labels ...Label) {
	if h == nil {
		return
	}
	r.mu.Lock()
	if s := r.lookup(name, KindHistogram, labels); s != nil {
		s.Hist.Merge(h)
	}
	r.mu.Unlock()
}

// Add merges one sample into the registry: counters and gauges sum,
// histograms merge. It is how the router folds per-target snapshots
// into a fleet registry. A kind conflict drops the incoming sample.
func (r *Registry) Add(in Sample) {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.lookup(in.Name, in.Kind, in.Labels)
	if s == nil {
		return
	}
	switch in.Kind {
	case KindHistogram:
		if in.Hist != nil {
			s.Hist.Merge(in.Hist)
		}
	default:
		s.Value += in.Value
	}
}

// Snapshot returns the registry's samples sorted by (name, labels).
// Histograms are cloned, so the snapshot is immune to later writes.
func (r *Registry) Snapshot() []Sample {
	r.mu.Lock()
	defer r.mu.Unlock()
	keys := make([]string, 0, len(r.samples))
	for k := range r.samples {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]Sample, 0, len(keys))
	for _, k := range keys {
		s := *r.samples[k]
		if s.Hist != nil {
			s.Hist = s.Hist.Clone()
		}
		out = append(out, s)
	}
	return out
}

// Relabel returns the samples with an extra label on every series —
// the router uses it to stamp target="name" onto a target's snapshot
// before folding it into the fleet registry.
func Relabel(samples []Sample, key, value string) []Sample {
	out := make([]Sample, len(samples))
	for i, s := range samples {
		labels := make([]Label, 0, len(s.Labels)+1)
		labels = append(labels, s.Labels...)
		labels = append(labels, Label{Key: key, Value: value})
		s.Labels = sortLabels(labels)
		out[i] = s
	}
	return out
}

// WriteText writes the samples in a text exposition format, one series
// per line: name{k="v",...} value. Histograms expand to quantile rows
// (0.5, 0.99, 0.999) plus _count and _sum rows. Output is byte-
// deterministic for a given snapshot.
func WriteText(w io.Writer, samples []Sample) error {
	for _, s := range samples {
		switch s.Kind {
		case KindHistogram:
			h := s.Hist
			if h == nil {
				h = histo.New()
			}
			for _, q := range [...]struct {
				name string
				p    float64
			}{{"0.5", 50}, {"0.99", 99}, {"0.999", 99.9}} {
				ql := append(append([]Label{}, s.Labels...), Label{Key: "quantile", Value: q.name})
				if _, err := fmt.Fprintf(w, "%s%s %d\n", s.Name, labelText(ql), h.Percentile(q.p)); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "%s_count%s %d\n", s.Name, labelText(s.Labels), h.Count()); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s_sum%s %d\n", s.Name, labelText(s.Labels), h.Sum()); err != nil {
				return err
			}
		default:
			if _, err := fmt.Fprintf(w, "%s%s %s\n", s.Name, labelText(s.Labels), formatValue(s.Value)); err != nil {
				return err
			}
		}
	}
	return nil
}

func labelText(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(v string) string {
	if !strings.ContainsAny(v, `"\`+"\n") {
		return v
	}
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

func formatValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
