package metrics

import (
	"conduit/internal/histo"
	"conduit/internal/wire"
)

// ToWire projects a snapshot into wire metric samples, preserving the
// canonical (name, labels) order.
func ToWire(samples []Sample) []wire.MetricSample {
	if len(samples) == 0 {
		return nil
	}
	out := make([]wire.MetricSample, 0, len(samples))
	for _, s := range samples {
		ws := wire.MetricSample{
			Name:   s.Name,
			Labels: labelsToWire(s.Labels),
			Kind:   wire.MetricKind(s.Kind),
			Value:  s.Value,
		}
		if s.Kind == KindHistogram {
			ws.Value = 0
			ws.Hist = s.Hist
		}
		out = append(out, ws)
	}
	return out
}

// FromWire rehydrates wire metric samples into registry samples.
func FromWire(samples []wire.MetricSample) []Sample {
	if len(samples) == 0 {
		return nil
	}
	out := make([]Sample, 0, len(samples))
	for _, ws := range samples {
		s := Sample{
			Name:   ws.Name,
			Labels: sortLabels(labelsFromWire(ws.Labels)),
			Kind:   Kind(ws.Kind),
			Value:  ws.Value,
		}
		if s.Kind == KindHistogram {
			s.Hist = ws.Hist
			if s.Hist == nil {
				s.Hist = histo.New()
			}
		}
		out = append(out, s)
	}
	return out
}

func labelsToWire(labels []Label) []wire.Attr {
	if len(labels) == 0 {
		return nil
	}
	out := make([]wire.Attr, len(labels))
	for i, l := range labels {
		out[i] = wire.Attr{Key: l.Key, Value: l.Value}
	}
	return out
}

func labelsFromWire(attrs []wire.Attr) []Label {
	if len(attrs) == 0 {
		return nil
	}
	out := make([]Label, len(attrs))
	for i, a := range attrs {
		out[i] = Label{Key: a.Key, Value: a.Value}
	}
	return out
}
