package metrics

import (
	"bytes"
	"strings"
	"testing"

	"conduit/internal/histo"
)

func tenant(v string) Label { return Label{Key: "tenant", Value: v} }

// TestRegistryBasics: counters accumulate, gauges overwrite, label
// order never splits a series, and snapshots come out sorted.
func TestRegistryBasics(t *testing.T) {
	r := New()
	r.Count("requests_total", 2, tenant("a"))
	r.Count("requests_total", 3, tenant("a"))
	r.Count("requests_total", 7, tenant("b"))
	r.SetGauge("idle", 4, Label{Key: "pool", Value: "p"}, Label{Key: "app", Value: "aes"})
	r.SetGauge("idle", 1, Label{Key: "app", Value: "aes"}, Label{Key: "pool", Value: "p"})

	snap := r.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("snapshot holds %d series, want 3", len(snap))
	}
	if snap[0].Name != "idle" || snap[0].Value != 1 {
		t.Errorf("label permutation split the gauge series: %+v", snap[0])
	}
	if snap[1].Value != 5 || snap[2].Value != 7 {
		t.Errorf("counters did not accumulate: %+v", snap[1:])
	}
	for i := 1; i < len(snap); i++ {
		if seriesKey(snap[i-1].Name, snap[i-1].Labels) > seriesKey(snap[i].Name, snap[i].Labels) {
			t.Error("snapshot not sorted by series identity")
		}
	}
}

// TestKindConflictDropped: a series keeps its first kind; conflicting
// writes are dropped rather than corrupting it.
func TestKindConflictDropped(t *testing.T) {
	r := New()
	r.Count("x", 5)
	r.SetGauge("x", 99)
	h := histo.New()
	h.Add(1)
	r.MergeHist("x", h)
	r.Add(Sample{Name: "x", Kind: KindGauge, Value: 100})
	snap := r.Snapshot()
	if len(snap) != 1 || snap[0].Kind != KindCounter || snap[0].Value != 5 {
		t.Errorf("kind conflict corrupted the series: %+v", snap)
	}
}

// TestFleetMerge: Add sums counters and gauges and exactly merges
// histograms — the router's fleet fold.
func TestFleetMerge(t *testing.T) {
	mkTarget := func(base int64) []Sample {
		r := New()
		r.Count("requests_total", base, tenant("a"))
		h := histo.New()
		for i := int64(1); i <= base; i++ {
			h.Add(i * 1000)
		}
		r.MergeHist("latency_ns", h)
		return r.Snapshot()
	}
	fleet := New()
	for i, samples := range [][]Sample{mkTarget(10), mkTarget(20)} {
		for _, s := range Relabel(samples, "target", string(rune('a'+i))) {
			fleet.Add(s)
		}
	}
	// Distinct targets stay distinct series.
	snap := fleet.Snapshot()
	if len(snap) != 4 {
		t.Fatalf("fleet holds %d series, want 4 (2 per target)", len(snap))
	}
	// Merging WITHOUT relabeling collapses them exactly.
	merged := New()
	for _, samples := range [][]Sample{mkTarget(10), mkTarget(20)} {
		for _, s := range samples {
			merged.Add(s)
		}
	}
	msnap := merged.Snapshot()
	if len(msnap) != 2 {
		t.Fatalf("merged registry holds %d series, want 2", len(msnap))
	}
	if msnap[1].Value != 30 {
		t.Errorf("merged counter = %v, want 30", msnap[1].Value)
	}
	if msnap[0].Hist.Count() != 30 {
		t.Errorf("merged histogram holds %d samples, want 30", msnap[0].Hist.Count())
	}
}

// TestSnapshotIsolation: cloned histograms in a snapshot are immune to
// later registry writes.
func TestSnapshotIsolation(t *testing.T) {
	r := New()
	h := histo.New()
	h.Add(5)
	r.MergeHist("lat", h)
	snap := r.Snapshot()
	h2 := histo.New()
	h2.Add(6)
	r.MergeHist("lat", h2)
	if snap[0].Hist.Count() != 1 {
		t.Error("snapshot histogram observed a later write")
	}
}

// TestWriteText: the exposition format is one line per scalar series,
// quantile + _count + _sum rows per histogram, with escaped label
// values — and is byte-deterministic.
func TestWriteText(t *testing.T) {
	r := New()
	r.Count("requests_total", 12, tenant("a\"b"))
	r.SetGauge("temperature", -2.5)
	h := histo.New()
	for i := int64(1); i <= 100; i++ {
		h.Add(i * 1000)
	}
	r.MergeHist("latency_ns", h, tenant("a"))

	var buf bytes.Buffer
	if err := WriteText(&buf, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		`requests_total{tenant="a\"b"} 12`,
		"temperature -2.5",
		`latency_ns{tenant="a",quantile="0.5"}`,
		`latency_ns{tenant="a",quantile="0.99"}`,
		`latency_ns{tenant="a",quantile="0.999"}`,
		`latency_ns_count{tenant="a"} 100`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q:\n%s", want, text)
		}
	}
	var buf2 bytes.Buffer
	if err := WriteText(&buf2, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Error("exposition not byte-deterministic across snapshots")
	}
}

// TestWireRoundTrip: samples survive the wire projection — labels,
// kinds, values, and histogram contents.
func TestWireRoundTrip(t *testing.T) {
	r := New()
	r.Count("c", 3, tenant("x"))
	r.SetGauge("g", 1.5)
	h := histo.New()
	h.Add(42)
	r.MergeHist("h", h)
	in := r.Snapshot()
	out := FromWire(ToWire(in))
	if len(out) != len(in) {
		t.Fatalf("round trip kept %d of %d samples", len(out), len(in))
	}
	for i := range in {
		if out[i].Name != in[i].Name || out[i].Kind != in[i].Kind || out[i].Value != in[i].Value {
			t.Errorf("sample %d changed over the wire: %+v vs %+v", i, out[i], in[i])
		}
	}
	var hist *histo.Histogram
	for _, s := range out {
		if s.Kind == KindHistogram {
			hist = s.Hist
		}
	}
	if hist == nil || hist.Count() != 1 || hist.Max() != 42 {
		t.Errorf("histogram lost its contents over the wire: %+v", hist)
	}
}
