package conduit_test

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"

	conduit "conduit"
	"conduit/internal/trace"
)

// traceSchedule is the fixed request schedule the determinism tests
// replay: a mix of tenants, a plain and a sharded application, and the
// full policy spread, issued strictly sequentially so the admission
// sequence — and therefore every locally minted trace ID — is the same
// on every run.
func traceSchedule() []conduit.Request {
	var reqs []conduit.Request
	policies := []string{"Conduit", "CPU", "Ideal"}
	for i := 0; i < 8; i++ {
		for _, w := range []string{"plain", "sharded"} {
			reqs = append(reqs, conduit.Request{
				Tenant:   fmt.Sprintf("tenant-%02d", i%3),
				Workload: w,
				Policy:   policies[i%len(policies)],
			})
		}
	}
	return reqs
}

// newTraceServer builds a server with the whole observability surface
// armed: deterministic chaos, the recovery ladder, a sharded and an
// unsharded application, and the given trace options.
func newTraceServer(t *testing.T, topts *conduit.TraceOptions) *conduit.Server {
	t.Helper()
	faults := conduit.FaultsAtRate(0.15, 4, 7)
	srv := conduit.NewServer(conduit.DefaultConfig(), conduit.ServeOptions{
		Concurrency: 2,
		Prefork:     1,
		Faults:      &faults,
		Recovery: conduit.RecoveryOptions{
			MaxAttempts:      3,
			Hedge:            true,
			BreakerThreshold: 4,
			FallbackPolicy:   "CPU",
		},
		Trace: topts,
	})
	if err := srv.Register("plain", quickstartSource(2*16384)); err != nil {
		t.Fatal(err)
	}
	if err := srv.RegisterSharded("sharded", xorFilterSource(2*16384), 2); err != nil {
		t.Fatal(err)
	}
	return srv
}

// TestTraceSameSeedByteIdentical is the tentpole determinism pin: two
// fresh servers draining the same seed, fault schedule, and request
// sequence export byte-identical simulated-time JSONL traces — fault
// injections, retries, hedges, breaker events, shard fan-out and all.
// The tracer is unclocked (Options.Now nil), so no wall-clock field can
// leak in to break the identity.
func TestTraceSameSeedByteIdentical(t *testing.T) {
	run := func() []byte {
		srv := newTraceServer(t, &conduit.TraceOptions{SampleEvery: 1})
		defer srv.Drain()
		for _, req := range traceSchedule() {
			srv.Do(req) // chaos responses may fail; the trace records that too
		}
		var buf bytes.Buffer
		if err := trace.WriteJSONL(&buf, srv.Tracer().Spans()); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	first, second := run(), run()
	if len(first) == 0 {
		t.Fatal("traced run exported no spans")
	}
	if !bytes.Equal(first, second) {
		t.Errorf("same-seed traces differ across fresh servers\n--- first ---\n%s\n--- second ---\n%s",
			first, second)
	}
	for _, want := range []string{`"serve.request"`, `"serve.run"`, `"cluster.shard"`, `"fault_injected"`} {
		if !bytes.Contains(first, []byte(want)) {
			t.Errorf("trace export missing %s", want)
		}
	}
	if bytes.Contains(first, []byte(`"wall_`)) {
		t.Error("unclocked trace export leaked a wall-clock field")
	}
}

// TestTraceOffOutputIdenticalToUntraced is the zero-sampling identity:
// a server armed with a tracer at SampleEvery 0 (the wire-deferred
// default every target runs with) must serve responses and simulated
// accounting identical to a server with no tracer at all — over the
// same golden request suite. Wall-clock latency columns are excluded:
// they differ between ANY two runs, traced or not.
func TestTraceOffOutputIdenticalToUntraced(t *testing.T) {
	type outcome struct {
		key     resultKey
		errText string
	}
	// simTenant is the deterministic projection of a tenant snapshot —
	// everything except the wall-clock latency quantiles.
	type simTenant struct {
		Tenant                                            string
		Requests, Errors, Shed, Expired, Shared, Attained int64
		Recovery                                          conduit.Recovery
		Sim                                               conduit.Time
		EnergyJ                                           float64
	}
	run := func(topts *conduit.TraceOptions) ([]outcome, []simTenant, *conduit.Server) {
		srv := newTraceServer(t, topts)
		var outs []outcome
		for _, req := range traceSchedule() {
			resp, err := srv.Do(req)
			o := outcome{}
			if err != nil {
				o.errText = err.Error()
			} else if resp.Err != nil {
				o.errText = resp.Err.Error()
			} else {
				o.key = keyOf(conduit.ResultOf(resp))
			}
			outs = append(outs, o)
		}
		srv.Drain()
		var tenants []simTenant
		for _, ts := range srv.Tenants() {
			tenants = append(tenants, simTenant{
				Tenant: ts.Tenant, Requests: ts.Requests, Errors: ts.Errors,
				Shed: ts.Shed, Expired: ts.Expired, Shared: ts.Shared,
				Attained: ts.Attained, Recovery: ts.Recovery,
				Sim: ts.Sim, EnergyJ: ts.EnergyJ,
			})
		}
		return outs, tenants, srv
	}
	wantOuts, wantTenants, _ := run(nil)
	gotOuts, gotTenants, srv := run(&conduit.TraceOptions{})
	if !reflect.DeepEqual(gotOuts, wantOuts) {
		t.Errorf("trace-off responses differ from untraced\n got: %+v\nwant: %+v", gotOuts, wantOuts)
	}
	if !reflect.DeepEqual(gotTenants, wantTenants) {
		t.Errorf("trace-off tenant accounting differs from untraced\n got: %+v\nwant: %+v",
			gotTenants, wantTenants)
	}
	if spans := srv.Tracer().Spans(); len(spans) != 0 {
		t.Errorf("SampleEvery=0 recorded %d spans without a wire sampling bit", len(spans))
	}
}

// TestMetricsSnapshotMatchesAccounting: the fill-at-scrape registry is
// a projection of the same authoritative counters the report reads —
// per-tenant requests, pool quarantine/repair cycles, breaker trips.
func TestMetricsSnapshotMatchesAccounting(t *testing.T) {
	srv := newTraceServer(t, nil)
	defer srv.Drain()
	for _, req := range traceSchedule() {
		srv.Do(req)
	}
	samples := srv.Metrics()
	byKey := make(map[string]float64)
	for _, s := range samples {
		key := s.Name
		for _, l := range s.Labels {
			key += "|" + l.Key + "=" + l.Value
		}
		byKey[key] = s.Value
	}
	for _, ts := range srv.Tenants() {
		if got := byKey["conduit_serve_requests_total|tenant="+ts.Tenant]; got != float64(ts.Requests) {
			t.Errorf("tenant %s: scrape says %v requests, accounting says %d", ts.Tenant, got, ts.Requests)
		}
	}
	pools := srv.PoolStats()
	if len(pools) == 0 {
		t.Fatal("no pools to scrape")
	}
	for name, ps := range pools {
		if got := byKey["conduit_pool_quarantined_total|pool="+name]; got != float64(ps.Quarantined) {
			t.Errorf("pool %s: scrape says %v quarantined, stats say %d", name, got, ps.Quarantined)
		}
		if got := byKey["conduit_pool_repairs_total|pool="+name]; got != float64(ps.Repairs) {
			t.Errorf("pool %s: scrape says %v repairs, stats say %d", name, got, ps.Repairs)
		}
	}
}
