package conduit

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"

	"conduit/internal/compiler"
	"conduit/internal/isa"
	"conduit/internal/serve"
	"conduit/internal/stats"
	"conduit/internal/workloads"
)

// Experiments regenerates every table and figure of the paper's
// motivation and evaluation sections (see DESIGN.md's per-experiment
// index). Runs are memoized, so figures sharing the same sweeps (Figs. 5,
// 7a, 7b, 9) execute each workload x policy pair once. Each workload is
// compiled and NVMe-deployed once; every policy run restores the
// post-deploy snapshot instead of re-driving the deploy path, and RunGrid
// executes whole workload x policy grids across a worker pool. All
// methods are safe for concurrent use.
type Experiments struct {
	sys     *System
	scale   int
	workers int

	// Memoization shares the serving layer's singleflight machinery
	// (internal/serve): concurrent callers of one cell share a single
	// execution and successes are cached for the harness lifetime.
	compiles serve.FlightGroup // workload -> *Compiled
	deploys  serve.FlightGroup // workload -> *Deployment
	runs     serve.FlightGroup // workload|policy -> *RunResult
}

// NewExperiments builds a harness at the given workload scale factor
// (1 = smoke-test sizes; larger approaches the paper's stream lengths).
func NewExperiments(cfg Config, scale int) *Experiments {
	if scale < 1 {
		scale = 1
	}
	return &Experiments{
		sys:     NewSystem(cfg),
		scale:   scale,
		workers: runtime.GOMAXPROCS(0),
	}
}

// NewReferenceExperiments builds the same harness on a functional
// reference system (NewReferenceSystem): every run computes real page
// payloads instead of eliding them. Figure outputs are required to be
// byte-identical to the timing-only harness — the golden identity tests
// enforce it — so this exists for those tests and for debugging, not
// for routine use.
func NewReferenceExperiments(cfg Config, scale int) *Experiments {
	e := NewExperiments(cfg, scale)
	e.sys = NewReferenceSystem(cfg)
	return e
}

// SetWorkers bounds the number of concurrent runs RunGrid (and the figure
// sweeps built on it) may execute. n < 1 selects GOMAXPROCS.
func (e *Experiments) SetWorkers(n int) {
	if n < 1 {
		n = runtime.GOMAXPROCS(0)
	}
	e.workers = n
}

// Workloads lists the six evaluated workload names in figure order.
func (e *Experiments) Workloads() []string {
	names := make([]string, 0, 6)
	for _, w := range workloads.All(1) {
		names = append(names, w.Name)
	}
	return names
}

func (e *Experiments) compiled(workload string) (*Compiled, error) {
	v, _, err := e.compiles.Do(workload, func() (interface{}, error) {
		for _, w := range workloads.All(e.scale) {
			if w.Name == workload {
				return Compile(w.Source, &e.sys.cfg)
			}
		}
		return nil, fmt.Errorf("conduit: unknown workload %q", workload)
	})
	if err != nil {
		return nil, err
	}
	return v.(*Compiled), nil
}

// deployment returns workload's reusable post-deploy image, deploying at
// most once per workload.
func (e *Experiments) deployment(workload string) (*Deployment, error) {
	v, _, err := e.deploys.Do(workload, func() (interface{}, error) {
		c, err := e.compiled(workload)
		if err != nil {
			return nil, err
		}
		return e.sys.Deploy(c)
	})
	if err != nil {
		return nil, err
	}
	return v.(*Deployment), nil
}

// Run executes (workload, policy), memoized. Concurrent callers of the
// same cell share one execution; distinct cells run independently.
func (e *Experiments) Run(workload, policy string) (*RunResult, error) {
	v, _, err := e.runs.Do(workload+"|"+policy, func() (interface{}, error) {
		var r *RunResult
		var err error
		switch policy {
		case "CPU", "GPU":
			// Host baselines need no drive: run from the compiled program.
			var c *Compiled
			if c, err = e.compiled(workload); err == nil {
				r, err = e.sys.runHost(c, policy)
			}
		default:
			var dep *Deployment
			if dep, err = e.deployment(workload); err == nil {
				r, err = dep.Run(policy)
			}
		}
		if err != nil {
			return nil, fmt.Errorf("%s under %s: %w", workload, policy, err)
		}
		return r, nil
	})
	if err != nil {
		return nil, err
	}
	return v.(*RunResult), nil
}

// RunGrid executes every (workload, policy) cell of the grid across a
// pool of e.workers goroutines, memoizing each cell, and returns the
// results in workload-major order: out[i][j] is workloads[i] under
// policies[j]. Output ordering and values are deterministic — identical
// to running the same cells serially — because every cell executes on its
// own restored device and results are placed by index, not completion
// order. On failure the error of the first cell in grid order is
// returned.
func (e *Experiments) RunGrid(workloads, policies []string) ([][]*RunResult, error) {
	out := make([][]*RunResult, len(workloads))
	errs := make([][]error, len(workloads))
	for i := range workloads {
		out[i] = make([]*RunResult, len(policies))
		errs[i] = make([]error, len(policies))
	}
	type cell struct{ i, j int }
	jobs := make(chan cell)
	var wg sync.WaitGroup
	for w := 0; w < e.workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for c := range jobs {
				out[c.i][c.j], errs[c.i][c.j] = e.Run(workloads[c.i], policies[c.j])
			}
		}()
	}
	for i := range workloads {
		for j := range policies {
			jobs <- cell{i, j}
		}
	}
	close(jobs)
	wg.Wait()
	for i := range errs {
		for _, err := range errs[i] {
			if err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}

// Speedup reports workload's speedup under policy, normalized to CPU.
func (e *Experiments) Speedup(workload, policy string) (float64, error) {
	cpu, err := e.Run(workload, "CPU")
	if err != nil {
		return 0, err
	}
	r, err := e.Run(workload, policy)
	if err != nil {
		return 0, err
	}
	return float64(cpu.Elapsed) / float64(r.Elapsed), nil
}

// GridTable runs the full workload x policy grid through the concurrent
// sweep engine and reports every cell's end-to-end execution time — the
// raw material the individual figures slice.
func (e *Experiments) GridTable() (*Table, error) {
	ps := Policies()
	grid, err := e.RunGrid(e.Workloads(), ps)
	if err != nil {
		return nil, err
	}
	cols := append([]string{"workload"}, ps...)
	t := stats.NewTable("Grid: execution time (ms) per workload x policy", cols...)
	for i, w := range e.Workloads() {
		row := []interface{}{w}
		for j := range ps {
			row = append(row, float64(grid[i][j].Elapsed)/1e6)
		}
		t.AddRowf(row...)
	}
	return t, nil
}

// --- Fig. 4: case study ------------------------------------------------------

// caseStudyClass builds the three §3.1 workload classes as sources.
func caseStudyClass(class string, scale int) *Source {
	n := scale * 16 * (16 << 10) // streaming-sized: exceeds host cache and SSD DRAM
	data := func(seed uint64) []byte {
		b := make([]byte, n)
		for i := range b {
			b[i] = byte(uint64(i)*seed + seed)
		}
		return b
	}
	switch class {
	case "I/O-Intensive":
		// Bitmap-scan style: bulk bitwise operations over streamed data.
		return &Source{
			Name: "io-intensive",
			Arrays: []*Array{
				{Name: "a", Elem: 1, Len: n, Input: true, Data: data(3)},
				{Name: "b", Elem: 1, Len: n, Input: true, Data: data(5)},
				{Name: "out", Elem: 1, Len: n},
			},
			Stmts: []compiler.Stmt{
				Loop{Name: "scan", N: n, Body: []Assign{
					{Target: "out", Value: Bin{Op: OpAnd, X: Ref{Name: "a"}, Y: Ref{Name: "b"}}},
					{Target: "out", Value: Bin{Op: OpOr, X: Ref{Name: "out"}, Y: Bin{Op: OpXor, X: Ref{Name: "a"}, Y: Ref{Name: "b"}}}},
				}},
			},
		}
	case "More Compute-Intensive":
		// Encryption/matmul style: multiply-heavy with reuse.
		src := &Source{
			Name: "compute-intensive",
			Arrays: []*Array{
				{Name: "x", Elem: 1, Len: n, Input: true, Data: data(7)},
				{Name: "w", Elem: 1, Len: n, Input: true, Data: data(11)},
				{Name: "acc", Elem: 1, Len: n},
			},
		}
		for k := 0; k < 6; k++ {
			src.Stmts = append(src.Stmts, Loop{Name: fmt.Sprintf("mac%d", k), N: n, Body: []Assign{
				{Target: "acc", Value: Bin{Op: OpAdd,
					X: Ref{Name: "acc"},
					Y: Bin{Op: OpMul, X: Ref{Name: "x"}, Y: Ref{Name: "w"}}}},
			}})
		}
		src.Stmts = append(src.Stmts, ScalarWork{Name: "control", Cycles: int64(n)})
		return src
	default: // "Mixed"
		// Aggregation/sort style: arithmetic plus predication plus
		// control.
		return &Source{
			Name: "mixed",
			Arrays: []*Array{
				{Name: "v", Elem: 1, Len: n, Input: true, Data: data(13)},
				{Name: "k", Elem: 1, Len: n, Input: true, Data: data(17)},
				{Name: "agg", Elem: 1, Len: n},
			},
			Stmts: []compiler.Stmt{
				Loop{Name: "filter", N: n, Body: []Assign{
					{Target: "agg", Value: Cond{
						Mask: Bin{Op: OpGT, X: Ref{Name: "k"}, Y: Lit{Value: 64}},
						A:    Bin{Op: OpAdd, X: Ref{Name: "agg"}, Y: Ref{Name: "v"}},
						B:    Ref{Name: "agg"},
					}},
				}},
				Loop{Name: "merge", N: n / 8, ForceScalar: true, Body: []Assign{
					{Target: "agg", Value: Bin{Op: OpAdd, X: Ref{Name: "agg"}, Y: Ref{Name: "k", Offset: 1}}},
				}},
				Loop{Name: "combine", N: n, Body: []Assign{
					{Target: "agg", Value: Bin{Op: OpXor, X: Ref{Name: "agg"}, Y: Bin{Op: OpAnd, X: Ref{Name: "v"}, Y: Ref{Name: "k"}}}},
				}},
			},
		}
	}
}

// Fig4 reproduces the §3.1 case study: OSP, ISP, IFP, and naive IFP+ISP
// execution time per workload class, normalized to OSP (lower is better).
// The movement column reports each run's data-movement energy share,
// standing in for the stacked breakdown of the original figure.
func (e *Experiments) Fig4() (*Table, error) {
	classes := []string{"I/O-Intensive", "More Compute-Intensive", "Mixed"}
	models := []string{"CPU", "ISP", "Ares-Flash", "IFP+ISP"}
	labels := []string{"OSP", "ISP", "IFP", "IFP+ISP"}
	t := stats.NewTable("Fig 4: case study — execution time normalized to OSP (lower is better)",
		"class", "model", "norm_time", "movement_share")
	for _, class := range classes {
		src := caseStudyClass(class, e.scale)
		var base float64
		for i, model := range models {
			r, err := e.sys.Run(src, model)
			if err != nil {
				return nil, err
			}
			if i == 0 {
				base = float64(r.Elapsed)
			}
			share := 0.0
			if tot := r.TotalEnergy(); tot > 0 {
				share = r.MovementEnergy / tot
			}
			t.AddRowf(class, labels[i], float64(r.Elapsed)/base, share)
		}
	}
	return t, nil
}

// --- Fig. 5 / Fig. 7(a): speedups -------------------------------------------

// fig5Policies is the motivation-study lineup (§3.2, no Conduit).
var fig5Policies = []string{"GPU", "ISP", "PuD-SSD", "Flash-Cosmos", "Ares-Flash",
	"BW-Offloading", "DM-Offloading", "Ideal"}

// fig7Policies adds Conduit (§6.1).
var fig7Policies = []string{"GPU", "ISP", "PuD-SSD", "Flash-Cosmos", "Ares-Flash",
	"BW-Offloading", "DM-Offloading", "Conduit", "Ideal"}

func (e *Experiments) speedupTable(title string, policies []string) (*Table, error) {
	// Fill the whole grid (plus the CPU baseline column every speedup
	// divides by) across the worker pool; the loop below then reads
	// memoized cells in deterministic figure order.
	if _, err := e.RunGrid(e.Workloads(), append([]string{"CPU"}, policies...)); err != nil {
		return nil, err
	}
	cols := append([]string{"workload"}, policies...)
	t := stats.NewTable(title, cols...)
	geo := make(map[string][]float64)
	for _, w := range e.Workloads() {
		row := []interface{}{w}
		for _, p := range policies {
			s, err := e.Speedup(w, p)
			if err != nil {
				return nil, err
			}
			row = append(row, s)
			geo[p] = append(geo[p], s)
		}
		t.AddRowf(row...)
	}
	row := []interface{}{"GMEAN"}
	for _, p := range policies {
		row = append(row, stats.GeoMean(geo[p]))
	}
	t.AddRowf(row...)
	return t, nil
}

// Fig5 reproduces the motivation study: speedup of the prior techniques
// and the Ideal policy over CPU (§3.2).
func (e *Experiments) Fig5() (*Table, error) {
	return e.speedupTable("Fig 5: speedup over CPU (motivation, prior techniques)", fig5Policies)
}

// Fig7a reproduces the main performance result: speedup over CPU with
// Conduit included (§6.1).
func (e *Experiments) Fig7a() (*Table, error) {
	return e.speedupTable("Fig 7(a): speedup over CPU", fig7Policies)
}

// --- Fig. 7(b): energy --------------------------------------------------------

// Fig7b reproduces the energy result: consumption normalized to CPU with
// the data-movement share of each bar (§6.2).
func (e *Experiments) Fig7b() (*Table, error) {
	policies := append([]string{"CPU"}, fig7Policies...)
	if _, err := e.RunGrid(e.Workloads(), policies); err != nil {
		return nil, err
	}
	cols := append([]string{"workload"}, policies...)
	t := stats.NewTable("Fig 7(b): energy normalized to CPU (movement share in parentheses)", cols...)
	for _, w := range e.Workloads() {
		cpu, err := e.Run(w, "CPU")
		if err != nil {
			return nil, err
		}
		base := cpu.TotalEnergy()
		row := []interface{}{w}
		for _, p := range policies {
			r, err := e.Run(w, p)
			if err != nil {
				return nil, err
			}
			tot := r.TotalEnergy()
			share := 0.0
			if tot > 0 {
				share = r.MovementEnergy / tot
			}
			row = append(row, fmt.Sprintf("%.3f (%.0f%%)", tot/base, 100*share))
		}
		t.AddRowf(row...)
	}
	return t, nil
}

// --- Fig. 8: tail latency -----------------------------------------------------

// Fig8 reproduces the tail-latency comparison: p99 and p99.99 per-request
// latencies of Ideal, Conduit, BW-Offloading, and DM-Offloading on LLaMA2
// inference and jacobi-1d (§6.3).
func (e *Experiments) Fig8() (*Table, error) {
	ws := []string{"LlaMA2 Inference", "jacobi-1d"}
	ps := []string{"Ideal", "Conduit", "BW-Offloading", "DM-Offloading"}
	if _, err := e.RunGrid(ws, ps); err != nil {
		return nil, err
	}
	t := stats.NewTable("Fig 8: tail latency (µs)",
		"workload", "policy", "p99_us", "p9999_us")
	for _, w := range ws {
		for _, p := range ps {
			r, err := e.Run(w, p)
			if err != nil {
				return nil, err
			}
			t.AddRowf(w, p,
				float64(r.InstLatencies.P99())/1e3,
				float64(r.InstLatencies.P9999())/1e3)
		}
	}
	return t, nil
}

// --- Fig. 9: offloading decisions --------------------------------------------

// Fig9 reproduces the resource-utilization breakdown: the fraction of
// instructions each policy offloads to ISP, PuD-SSD, and IFP (§6.4).
func (e *Experiments) Fig9() (*Table, error) {
	ps := []string{"BW-Offloading", "DM-Offloading", "Conduit", "Ideal"}
	if _, err := e.RunGrid(e.Workloads(), ps); err != nil {
		return nil, err
	}
	t := stats.NewTable("Fig 9: fraction of instructions per computation resource",
		"workload", "policy", "ISP", "PuD-SSD", "IFP")
	for _, w := range e.Workloads() {
		for _, p := range ps {
			r, err := e.Run(w, p)
			if err != nil {
				return nil, err
			}
			fr := Fractions(r.Decisions)
			t.AddRowf(w, p, fr[isa.ResISP], fr[isa.ResPuD], fr[isa.ResIFP])
		}
	}
	return t, nil
}

// --- Fig. 10: instruction-to-resource timeline --------------------------------

// Fig10 reproduces the execution-trace analysis: for a window of LLaMA2
// inference instructions, the operation stream and the resource each
// policy chose, rendered as per-bucket strips (I = ISP, P = PuD, F = IFP;
// the op strip shows the dominant operation class per bucket).
func (e *Experiments) Fig10(window, buckets int) (*Table, error) {
	if buckets <= 0 {
		buckets = 60
	}
	policies := []string{"BW-Offloading", "DM-Offloading", "Conduit"}
	t := stats.NewTable(
		fmt.Sprintf("Fig 10: LLaMA2 inference instruction->resource map (%d-instruction window)", window),
		"series", "strip")
	var opsRow string
	for i, p := range policies {
		r, err := e.Run("LlaMA2 Inference", p)
		if err != nil {
			return nil, err
		}
		ds := r.Decisions
		if window > 0 && len(ds) > window {
			ds = ds[:window]
		}
		if i == 0 {
			opsRow = opClassStrip(ds, buckets)
			t.AddRow("operations", opsRow)
		}
		t.AddRow(p, resourceStrip(ds, buckets))
	}
	return t, nil
}

// opClassStrip samples the instruction stream evenly and renders one
// glyph per sampled instruction's operation class: b=bitwise,
// a=arithmetic, p=predication, m=move/shuffle, r=reduction, c=control.
func opClassStrip(ds []Decision, samples int) string {
	if len(ds) == 0 {
		return ""
	}
	glyphs := map[isa.Class]byte{
		isa.ClassBitwise: 'b', isa.ClassArithmetic: 'a', isa.ClassPredication: 'p',
		isa.ClassMove: 'm', isa.ClassReduction: 'r', isa.ClassControl: 'c',
	}
	var b strings.Builder
	for i := 0; i < samples; i++ {
		b.WriteByte(glyphs[ds[i*len(ds)/samples].Op.Class()])
	}
	return b.String()
}

// resourceStrip samples the stream evenly and renders the chosen resource
// per sampled instruction, preserving the interleaving texture Fig. 10
// visualizes.
func resourceStrip(ds []Decision, samples int) string {
	if len(ds) == 0 {
		return ""
	}
	glyphs := [NumResources]byte{'I', 'P', 'F'}
	var b strings.Builder
	for i := 0; i < samples; i++ {
		b.WriteByte(glyphs[ds[i*len(ds)/samples].Resource])
	}
	return b.String()
}

// --- Table 3 -------------------------------------------------------------------

// Table3 reproduces the workload-characteristics table: vectorizable code
// percentage, average reuse, and the latency-band operation mix.
func (e *Experiments) Table3() (*Table, error) {
	t := stats.NewTable("Table 3: workload characteristics",
		"workload", "vectorizable_%", "avg_reuse", "low_%", "medium_%", "high_%", "instructions")
	for _, w := range workloads.All(e.scale) {
		c, err := e.compiled(w.Name)
		if err != nil {
			return nil, err
		}
		ch := workloads.Characterize(w.Name, c)
		t.AddRowf(ch.Name, ch.VectorizablePct, ch.AvgReuse, ch.LowPct, ch.MediumPct, ch.HighPct, ch.Instructions)
	}
	return t, nil
}

// --- §4.5 overheads --------------------------------------------------------------

// Overhead reproduces the runtime-overhead analysis: mean and max
// per-instruction offloader latency and the metadata storage footprint.
func (e *Experiments) Overhead() (*Table, error) {
	t := stats.NewTable("§4.5: Conduit runtime overheads",
		"workload", "mean_us_per_inst", "translation_table_bytes")
	tab := isa.BuildTranslationTable()
	for _, w := range e.Workloads() {
		r, err := e.Run(w, "Conduit")
		if err != nil {
			return nil, err
		}
		n := len(r.Decisions)
		if n == 0 {
			continue
		}
		t.AddRowf(w, float64(r.OverheadTime)/float64(n)/1e3, tab.SizeBytes())
	}
	return t, nil
}

// --- Ablations -------------------------------------------------------------------

// AblationCostFeatures quantifies each cost-function term by removing it
// (queueing delay, dependence delay, movement latency) on the two most
// contention-sensitive workloads.
func (e *Experiments) AblationCostFeatures() (*Table, error) {
	t := stats.NewTable("Ablation: cost-function features (speedup over CPU)",
		"workload", "Conduit", "no_queue", "no_dep", "no_move")
	for _, w := range []string{"heat-3d", "LlaMA2 Inference"} {
		row := []interface{}{w}
		for _, p := range []string{"Conduit", "Conduit-noqueue", "Conduit-nodep", "Conduit-nomove"} {
			s, err := e.Speedup(w, p)
			if err != nil {
				return nil, err
			}
			row = append(row, s)
		}
		t.AddRowf(row...)
	}
	return t, nil
}

// AblationVectorWidth sweeps the vector width — equivalently the page
// size the compiler aligns vectors to (the paper's
// -force-vector-width=4096 maps one 16 KiB page; §4.3.1) — under Conduit
// on heat-3d. Wider vectors amortize the per-instruction offloading
// overhead; narrower ones expose more scheduling freedom.
func (e *Experiments) AblationVectorWidth() (*Table, error) {
	t := stats.NewTable("Ablation: vector width / page size (Conduit on heat-3d)",
		"page_KiB", "lanes_int8", "instructions", "elapsed_ms")
	for _, kib := range []int{4, 8, 16, 32} {
		cfg := e.sys.cfg
		cfg.SSD.PageSize = kib << 10
		sys := NewSystem(cfg)
		var src *Source
		for _, w := range workloads.All(e.scale) {
			if w.Name == "heat-3d" {
				src = w.Source
			}
		}
		c, err := Compile(src, &cfg)
		if err != nil {
			return nil, err
		}
		r, err := sys.RunCompiled(c, "Conduit")
		if err != nil {
			return nil, err
		}
		t.AddRowf(kib, kib<<10, len(c.Prog.Insts), float64(r.Elapsed)/1e6)
	}
	return t, nil
}

// --- Cluster scaling ---------------------------------------------------------

// ShardCounts expands a maximum shard count into the sweep points the
// scaling experiment visits: powers of two up to max, plus max itself.
func ShardCounts(maxShards int) []int {
	if maxShards < 1 {
		maxShards = 1
	}
	var out []int
	for n := 1; n < maxShards; n *= 2 {
		out = append(out, n)
	}
	return append(out, maxShards)
}

// ClusterScaling sweeps each evaluation workload across multi-device
// cluster sizes under the given policy: one row per (workload, shards)
// point with the merged elapsed time, the scale-out speedup against the
// same workload's 1-shard cluster (byte-identical to a single device),
// total energy, and the partition shape (partitioned/broadcast array
// counts). Shard counts are normalized first — sorted, deduplicated,
// and the 1-shard baseline added if absent — so the speedup column
// always has its denominator. Shard counts a workload cannot reach —
// more shards than it has vector blocks — are skipped rather than
// failed, so one sweep serves workloads of different footprints. With
// -csv this is the scale-out scaling curve as data.
func (e *Experiments) ClusterScaling(policy string, shardCounts []int) (*Table, error) {
	if !KnownPolicy(policy) {
		return nil, errUnknownPolicy(policy)
	}
	counts := map[int]bool{1: true}
	for _, n := range shardCounts {
		if n > 1 {
			counts[n] = true
		}
	}
	shardCounts = make([]int, 0, len(counts))
	for n := range counts {
		shardCounts = append(shardCounts, n)
	}
	sort.Ints(shardCounts)
	t := stats.NewTable(
		fmt.Sprintf("Cluster scaling: %s across multi-device shards", policy),
		"workload", "shards", "elapsed_ms", "speedup_vs_1shard", "energy_j", "partitioned", "broadcast")
	for _, w := range workloads.All(e.scale) {
		var base float64
		for _, n := range shardCounts {
			cl, err := e.sys.DeployCluster(w.Source, ClusterOptions{Shards: n})
			if errors.Is(err, ErrTooManyShards) {
				continue
			}
			if err != nil {
				return nil, fmt.Errorf("%s at %d shards: %w", w.Name, n, err)
			}
			r, err := cl.Run(policy)
			cl.Close()
			if err != nil {
				return nil, fmt.Errorf("%s at %d shards: %w", w.Name, n, err)
			}
			if n == 1 {
				base = float64(r.Elapsed)
			}
			speedup := 0.0
			if base > 0 {
				speedup = base / float64(r.Elapsed)
			}
			plan := cl.Plan()
			t.AddRowf(w.Name, n, float64(r.Elapsed)/1e6, speedup, r.TotalEnergy(),
				len(plan.Partitioned), len(plan.Broadcast))
		}
	}
	return t, nil
}

// AblationChannels sweeps the flash channel count under Conduit on
// heat-3d, showing sensitivity to internal parallelism.
func (e *Experiments) AblationChannels() (*Table, error) {
	t := stats.NewTable("Ablation: flash channels (Conduit on heat-3d)",
		"channels", "elapsed_ms")
	for _, ch := range []int{2, 4, 8, 16} {
		cfg := e.sys.cfg
		cfg.SSD.Channels = ch
		sys := NewSystem(cfg)
		var src *Source
		for _, w := range workloads.All(e.scale) {
			if w.Name == "heat-3d" {
				src = w.Source
			}
		}
		r, err := sys.Run(src, "Conduit")
		if err != nil {
			return nil, err
		}
		t.AddRowf(ch, float64(r.Elapsed)/1e6)
	}
	return t, nil
}
