package conduit

import (
	"fmt"
	"strconv"
	"sync"

	"conduit/internal/cluster"
	"conduit/internal/energy"
	"conduit/internal/stats"
	"conduit/internal/trace"
	"conduit/internal/workloads"
)

// ErrTooManyShards reports a cluster plan that asks for more shards than
// the workload has vector blocks; shard-scaling sweeps match it with
// errors.Is to stop scaling a workload out instead of failing.
var ErrTooManyShards = cluster.ErrTooManyShards

// ClusterOptions tunes a sharded multi-device deployment.
type ClusterOptions struct {
	// Shards is the number of independent simulated Conduit SSDs the
	// workload's arrays are row-block sharded across. < 1 selects 1 (a
	// single-device cluster, byte-identical to a plain Deployment).
	Shards int
	// Prefork is the per-shard device-pool depth (see Deployment.Prefork);
	// < 1 disables pooling and forks clone inline.
	Prefork int
	// Partition classifies arrays: true = partitionable (sliced
	// row-block-wise), false = broadcast (replicated whole to every
	// shard). Nil selects the workload's shardability metadata
	// (internal/workloads, matched by source name), which defaults to
	// partitioning every array for unknown workloads.
	Partition func(array string) bool
}

// ClusterPlan is the public description of how a cluster sharded its
// workload.
type ClusterPlan struct {
	Shards      int
	Blocks      int // vector blocks in the partitioned lane space
	PageLanes   int // lanes per vector block
	Partitioned []string
	Broadcast   []string
	// ReducePages counts the partial-result pages of reduce-shaped
	// kernels, summed across shards; nonzero means every N-shard run
	// pays a modeled host-side gather+combine step on top of the
	// parallel phase.
	ReducePages int
}

// A Cluster is a workload sharded across N independent simulated Conduit
// SSDs: each shard holds a row block of the partitionable arrays (plus a
// replica of every broadcast array) and carries its own compiled binary,
// NVMe-deployed exactly once per shard through the Deployment machinery.
// Run scatters a request into per-shard sub-runs on pooled clones and
// gathers the partial results through a deterministic merge, so a Cluster
// serves the same API as a Deployment at N-device capacity.
//
// The determinism contract extends Deployment's: a 1-shard Cluster run is
// byte-identical to Deployment.Run on the same workload, and an N-shard
// concurrent run is byte-identical to executing the shards one by one
// (RunSerial). Cluster is safe for concurrent use by multiple goroutines.
type Cluster struct {
	sys         *System
	plan        *cluster.Plan
	deps        []*Deployment
	reducePages int
}

// DeployCluster shards src across opts.Shards simulated drives: it plans
// the row-block partition, compiles each shard's source, deploys every
// shard binary over the NVMe path exactly once, and (when opts.Prefork is
// set) attaches a pre-fork pool per shard. With Shards <= 1 the single
// shard's source is the original, untouched — the resulting cluster is a
// plain Deployment behind the Cluster API.
func (s *System) DeployCluster(src *Source, opts ClusterOptions) (*Cluster, error) {
	shards := opts.Shards
	if shards < 1 {
		shards = 1
	}
	part := opts.Partition
	if part == nil {
		part = workloads.Partition(src.Name)
	}
	plan, err := cluster.PlanShards(src, s.cfg.SSD.PageSize, shards, part)
	if err != nil {
		return nil, err
	}
	cl := &Cluster{sys: s, plan: plan}
	for i := 0; i < shards; i++ {
		shardSrc, err := plan.Shard(src, i)
		if err != nil {
			cl.Close()
			return nil, err
		}
		c, err := Compile(shardSrc, &s.cfg)
		if err != nil {
			cl.Close()
			return nil, fmt.Errorf("conduit: compile shard %d/%d: %w", i, shards, err)
		}
		dep, err := s.Deploy(c)
		if err != nil {
			cl.Close()
			return nil, fmt.Errorf("conduit: deploy shard %d/%d: %w", i, shards, err)
		}
		if opts.Prefork > 0 {
			dep.Prefork(opts.Prefork)
		}
		cl.deps = append(cl.deps, dep)
		// Summed across shards: each shard emits partial pages only for
		// the reduce destinations it actually executed, so the total is
		// exactly what the host must gather (uneven plans included).
		cl.reducePages += cluster.ReducePages(c.Prog)
	}
	return cl, nil
}

// Shards reports the number of devices in the cluster.
func (cl *Cluster) Shards() int { return len(cl.deps) }

// Plan describes the partition the cluster deployed.
func (cl *Cluster) Plan() ClusterPlan {
	return ClusterPlan{
		Shards:      cl.plan.Shards,
		Blocks:      cl.plan.Blocks,
		PageLanes:   cl.plan.PageLanes,
		Partitioned: append([]string(nil), cl.plan.Partitioned...),
		Broadcast:   append([]string(nil), cl.plan.Broadcast...),
		ReducePages: cl.reducePages,
	}
}

// guardShardRun executes one shard's sub-run with panic containment:
// a panicking shard surfaces as a `shard %d panicked` error on that
// shard — matching the serve engine's backend containment contract —
// instead of killing the process. Containment matters doubly for the
// concurrent scatter path, where the panic fires on a scatter goroutine
// that no caller-side recover could ever reach.
func guardShardRun(i int, run func() (*RunResult, error)) (r *RunResult, err error) {
	defer func() {
		if p := recover(); p != nil {
			r, err = nil, fmt.Errorf("shard %d panicked: %v", i, p)
		}
	}()
	return run()
}

// runShards scatters run across the shards concurrently — one goroutine
// per shard, each with panic containment — and gathers the partial
// results through the deterministic merge. The returned error is the
// first failing shard's, in shard order. It is the shared scatter-gather
// engine behind Run and the fault-tolerant dispatch path.
func (cl *Cluster) runShards(run func(i int, dep *Deployment) (*RunResult, error)) (*RunResult, error) {
	parts := make([]*RunResult, len(cl.deps))
	errs := make([]error, len(cl.deps))
	var wg sync.WaitGroup
	for i, dep := range cl.deps {
		wg.Add(1)
		go func(i int, dep *Deployment) {
			defer wg.Done()
			parts[i], errs[i] = guardShardRun(i, func() (*RunResult, error) {
				return run(i, dep)
			})
		}(i, dep)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("conduit: shard %d/%d: %w", i, len(cl.deps), err)
		}
	}
	return cl.merge(parts), nil
}

// Run executes the deployed program under the named policy on every shard
// concurrently — each sub-run on its own pooled fork — and gathers the
// partial results through the deterministic merge. The returned error is
// the first failing shard's, in shard order; a panicking shard run is
// contained into such an error rather than crashing the process. Safe
// for concurrent use.
func (cl *Cluster) Run(policy string) (*RunResult, error) {
	if !KnownPolicy(policy) {
		return nil, errUnknownPolicy(policy)
	}
	return cl.runShards(func(i int, dep *Deployment) (*RunResult, error) {
		return dep.Run(policy)
	})
}

// runTraced implements the serving layer's traced-run seam: each shard
// sub-run becomes a "cluster.shard" child span keyed by its shard
// index, with the device execution nested inside. Span identity is
// content-derived from (trace, parent, name, key), so the concurrent
// scatter mints the same IDs as a serial one and the exported trace
// stays byte-deterministic.
func (cl *Cluster) runTraced(policy string, sp *trace.Span) (*RunResult, error) {
	if sp == nil {
		return cl.Run(policy)
	}
	if !KnownPolicy(policy) {
		return nil, errUnknownPolicy(policy)
	}
	return cl.runShards(func(i int, dep *Deployment) (*RunResult, error) {
		child := sp.Child("cluster.shard", strconv.Itoa(i), 0)
		child.SetAttr("shard", strconv.Itoa(i))
		r, err := dep.runTraced(policy, child)
		if err != nil {
			child.End(0)
			return nil, err
		}
		child.End(int64(r.Elapsed))
		return r, nil
	})
}

// RunSerial executes the shards one by one in shard order and merges
// identically to Run. It exists as the executable half of the determinism
// proof: concurrent scatter-gather must be byte-identical to this serial
// loop (enforced by tests), which is what licenses running shards in
// parallel at all. Panic containment matches Run's.
func (cl *Cluster) RunSerial(policy string) (*RunResult, error) {
	if !KnownPolicy(policy) {
		return nil, errUnknownPolicy(policy)
	}
	parts := make([]*RunResult, len(cl.deps))
	for i, dep := range cl.deps {
		r, err := guardShardRun(i, func() (*RunResult, error) { return dep.Run(policy) })
		if err != nil {
			return nil, fmt.Errorf("conduit: shard %d/%d: %w", i, len(cl.deps), err)
		}
		parts[i] = r
	}
	return cl.merge(parts), nil
}

// merge gathers per-shard partial results into one RunResult, processing
// shards strictly in index order so every float sum, sample sequence, and
// counter ordering is a deterministic function of the parts alone:
//
//   - Elapsed and OverheadTime take the max over shards — the shards run
//     in parallel on independent devices, so the slowest one bounds the
//     phase (plus the modeled host-side reduction step, below).
//   - Compute and movement energy sum in shard order (energy.MergeShards).
//   - Latency reservoirs union (stats.MergeReservoirs) and decision
//     traces concatenate, both in shard order.
//   - Substrate counters sum (stats.Counters.Merge) in shard order.
//   - Reduce-shaped kernels pay a host-side reduction: each shard's
//     partial reduce pages travel over PCIe and combine in host memory
//     (internal/cluster.ReduceModel), charged once on the merged elapsed
//     time and energy. 1-shard clusters skip it, keeping the 1-shard
//     merge an exact identity.
//
// The merged result carries no Device: there is no single drive to
// expose, and per-shard devices stay private to their pools.
func (cl *Cluster) merge(parts []*RunResult) *RunResult {
	merged := &RunResult{Policy: parts[0].Policy}
	compute := make([]float64, len(parts))
	movement := make([]float64, len(parts))
	reservoirs := make([]*Reservoir, len(parts))
	for i, r := range parts {
		if r.Elapsed > merged.Elapsed {
			merged.Elapsed = r.Elapsed
		}
		if r.OverheadTime > merged.OverheadTime {
			merged.OverheadTime = r.OverheadTime
		}
		compute[i], movement[i] = r.ComputeEnergy, r.MovementEnergy
		reservoirs[i] = r.InstLatencies
		merged.Decisions = append(merged.Decisions, r.Decisions...)
		if r.Counters != nil {
			if merged.Counters == nil {
				merged.Counters = stats.NewCounters()
			}
			merged.Counters.Merge(r.Counters)
		}
	}
	merged.InstLatencies = stats.MergeReservoirs(reservoirs...)
	merged.ComputeEnergy, merged.MovementEnergy = energy.MergeShards(compute, movement)
	if red := cluster.ReduceModel(&cl.sys.cfg, len(parts), cl.reducePages); red.Time > 0 {
		merged.Elapsed += red.Time
		merged.ComputeEnergy += red.ComputeJ
		merged.MovementEnergy += red.MovementJ
	}
	return merged
}

// Prefork attaches a pool of depth pre-forked clones to every shard (see
// Deployment.Prefork) and returns the pools in shard order.
func (cl *Cluster) Prefork(depth int) []*DevicePool {
	pools := make([]*DevicePool, len(cl.deps))
	for i, dep := range cl.deps {
		pools[i] = dep.Prefork(depth)
	}
	return pools
}

// poolStats implements the serving layer's application interface: a
// cluster contributes one "name#shard" entry per pooled shard.
func (cl *Cluster) poolStats(name string, out map[string]PoolStats) {
	for i, dep := range cl.deps {
		if p := dep.Pool(); p != nil {
			out[fmt.Sprintf("%s#%d", name, i)] = p.Stats()
		}
	}
}

// PoolStats reports each shard's device-pool counters in shard order;
// shards without a pool report a zero PoolStats.
func (cl *Cluster) PoolStats() []PoolStats {
	out := make([]PoolStats, len(cl.deps))
	for i, dep := range cl.deps {
		if p := dep.Pool(); p != nil {
			out[i] = p.Stats()
		}
	}
	return out
}

// Close closes every shard's prefork pool, if any. After Close returns no
// fork is buffered on any shard; later device-policy runs on pooled
// shards fail with ErrPoolClosed.
func (cl *Cluster) Close() {
	for _, dep := range cl.deps {
		dep.Close()
	}
}
