package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"

	conduit "conduit"
	"conduit/internal/sim"
	"conduit/internal/vecmath"
	"conduit/internal/workloads"
)

// benchResult is one recorded benchmark in the perf-trajectory file.
type benchResult struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	MBPerSec    float64 `json:"mb_per_s,omitempty"`
}

// benchFile is the schema of BENCH_*.json: a point-in-time record of the
// data-plane and serving benchmarks, with the derived ratios the
// acceptance bars refer to. scripts/bench.sh regenerates it
// (BENCH_pr8.json is the committed record for this PR).
type benchFile struct {
	Schema  string            `json:"schema"`
	Scale   int               `json:"scale"`
	GoArch  string            `json:"goarch"`
	Benches []benchResult     `json:"benches"`
	Derived map[string]string `json:"derived"`
}

func record(name string, r testing.BenchmarkResult, bytesProcessed int64) benchResult {
	out := benchResult{
		Name:        name,
		Iterations:  r.N,
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
	}
	if bytesProcessed > 0 && r.T > 0 {
		out.MBPerSec = float64(bytesProcessed) * float64(r.N) / r.T.Seconds() / 1e6
	}
	return out
}

// runBenchJSON executes the perf-trajectory benchmark set and writes the
// JSON record to path. It is the programmatic twin of
// `go test -bench 'VecmathKernels|Fig4|DeviceRunHot|ClusterScatterGather|ServeOpenLoop|ServeFaultFree' -benchmem`.
func runBenchJSON(path string, scale int) error {
	const page = 16 << 10
	a := make([]byte, page)
	b := make([]byte, page)
	dst := make([]byte, page)
	for i := range a {
		a[i] = byte(i * 31)
		b[i] = byte(i*17 + 5)
	}
	var out []benchResult
	micro := func(name string, bytes int64, fn func()) benchResult {
		r := record(name, testing.Benchmark(func(bb *testing.B) {
			bb.ReportAllocs()
			for i := 0; i < bb.N; i++ {
				fn()
			}
		}), bytes)
		out = append(out, r)
		return r
	}
	kernel := func(name string, fn func()) benchResult {
		return micro(name, page, fn)
	}

	bitSpec := kernel("vecmath/bitwise-and-1/specialized", func() { vecmath.Apply(vecmath.OpAnd, dst, a, b, 1) })
	bitGen := kernel("vecmath/bitwise-and-1/generic", func() { vecmath.ApplyGeneric(vecmath.OpAnd, dst, a, b, 1) })
	ariSpec := kernel("vecmath/arith-add-4/specialized", func() { vecmath.Apply(vecmath.OpAdd, dst, a, b, 4) })
	ariGen := kernel("vecmath/arith-add-4/generic", func() { vecmath.ApplyGeneric(vecmath.OpAdd, dst, a, b, 4) })

	// Simulation-engine microbenchmarks: schedule-drain throughput of
	// the coalescing bucket engine vs the reference heap engine on the
	// NAND-completion shape (16 events per instant, scattered arrival
	// order), and ReserveBatch's closed-form fast-forward vs the
	// equivalent single-Reserve loop.
	const drainN = 100_000
	drainTimes := make([]sim.Time, drainN)
	for i := range drainTimes {
		drainTimes[i] = sim.Time((i * 7919) % (drainN / 16) * 50)
	}
	drain := func(mk func() sim.Oracle) func() {
		return func() {
			e := mk()
			for _, at := range drainTimes {
				e.Schedule(at, func() {})
			}
			e.Run()
		}
	}
	simBucket := micro("sim/engine-drain-coalesced-1e5/bucket", 0, drain(func() sim.Oracle { return sim.NewEngine() }))
	simHeap := micro("sim/engine-drain-coalesced-1e5/heap", 0, drain(func() sim.Oracle { return sim.NewHeapEngine() }))
	const ffN = 4096
	ffBatch := micro("sim/calendar-fast-forward-4096/batch", 0, func() {
		c := sim.NewCalendar("bench")
		c.ReserveBatch(0, 0, 100, ffN)
	})
	ffLoop := micro("sim/calendar-fast-forward-4096/loop", 0, func() {
		c := sim.NewCalendar("bench")
		for j := 0; j < ffN; j++ {
			c.Reserve(0, 0, 100)
		}
	})

	// Fig. 4 regeneration: compile + deploy + run per call, the
	// whole-simulator macro path.
	e := conduit.NewExperiments(conduit.DefaultConfig(), scale)
	fig4 := record("experiments/fig4-regen", testing.Benchmark(func(bb *testing.B) {
		bb.ReportAllocs()
		for i := 0; i < bb.N; i++ {
			if _, err := e.Fig4(); err != nil {
				bb.Fatal(err)
			}
		}
	}), 0)
	out = append(out, fig4)

	// One full Conduit-policy device run with the deploy amortized.
	cfg := conduit.DefaultConfig()
	sys := conduit.NewSystem(cfg)
	w, ok := workloads.Find("llama2-inference", scale)
	if !ok {
		return fmt.Errorf("benchjson: workload llama2-inference not found")
	}
	comp, err := conduit.Compile(w.Source, &cfg)
	if err != nil {
		return err
	}
	dep, err := sys.Deploy(comp)
	if err != nil {
		return err
	}
	hot := record("device/run-hot-conduit", testing.Benchmark(func(bb *testing.B) {
		bb.ReportAllocs()
		for i := 0; i < bb.N; i++ {
			if _, err := dep.Run("Conduit"); err != nil {
				bb.Fatal(err)
			}
		}
	}), 0)
	out = append(out, hot)

	// Cluster scatter-gather: the same workload sharded across four
	// simulated drives. Host-side cost rises (four devices to simulate
	// per request); the derived entry records what the sharding buys —
	// the drop in *simulated* latency from holding 1/4 of the data per
	// device.
	cl4, err := sys.DeployCluster(w.Source, conduit.ClusterOptions{Shards: 4, Prefork: 2})
	if err != nil {
		return err
	}
	defer cl4.Close()
	scatter := record("cluster/run-4shard-conduit", testing.Benchmark(func(bb *testing.B) {
		bb.ReportAllocs()
		for i := 0; i < bb.N; i++ {
			if _, err := cl4.Run("Conduit"); err != nil {
				bb.Fatal(err)
			}
		}
	}), 0)
	out = append(out, scatter)
	oneDev, err := dep.Run("Conduit")
	if err != nil {
		return err
	}
	fourDev, err := cl4.Run("Conduit")
	if err != nil {
		return err
	}

	// Open-loop serving: the full Submit -> pooled-fork execution ->
	// histogram-accounting -> notify path at saturation (queue sized so
	// nothing sheds; shedding is pinned by tests, not measured here).
	srv := conduit.NewServer(cfg, conduit.ServeOptions{Concurrency: 2, QueueDepth: 2 * 4096, Prefork: 2})
	aes, ok := workloads.Find("aes", scale)
	if !ok {
		return fmt.Errorf("benchjson: workload aes not found")
	}
	if err := srv.Register(aes.Name, aes.Source); err != nil {
		return err
	}
	openLoop := record("serve/open-loop-submit", testing.Benchmark(func(bb *testing.B) {
		bb.ReportAllocs()
		chans := make([]<-chan *conduit.Response, 0, 4096)
		for submitted := 0; submitted < bb.N; {
			n := 4096
			if rest := bb.N - submitted; rest < n {
				n = rest
			}
			chans = chans[:0]
			for i := 0; i < n; i++ {
				ch, err := srv.Submit(conduit.Request{Tenant: "bench", Workload: aes.Name, Policy: "Conduit"})
				if err != nil {
					bb.Fatal(err)
				}
				chans = append(chans, ch)
			}
			for _, ch := range chans {
				if resp := <-ch; resp.Err != nil {
					bb.Fatal(resp.Err)
				}
			}
			submitted += n
		}
	}), 0)
	out = append(out, openLoop)
	srv.Drain()

	// The same open-loop stream through the fault-tolerant dispatch path
	// at zero injection rate: every request draws from the injector and
	// consults the recovery machinery, and the derived entry records what
	// that costs when nothing ever fails (the zero-overhead contract).
	zeroFaults := conduit.FaultConfig{Seed: 7} // all rates zero
	fsrv := conduit.NewServer(cfg, conduit.ServeOptions{
		Concurrency: 2, QueueDepth: 2 * 4096, Prefork: 2,
		Faults: &zeroFaults,
		Recovery: conduit.RecoveryOptions{
			MaxAttempts:      3,
			Hedge:            true,
			HedgeThreshold:   8,
			BreakerThreshold: 4,
			FallbackPolicy:   "CPU",
		},
	})
	if err := fsrv.Register(aes.Name, aes.Source); err != nil {
		return err
	}
	faultFree := record("serve/fault-free-submit", testing.Benchmark(func(bb *testing.B) {
		bb.ReportAllocs()
		chans := make([]<-chan *conduit.Response, 0, 4096)
		for submitted := 0; submitted < bb.N; {
			n := 4096
			if rest := bb.N - submitted; rest < n {
				n = rest
			}
			chans = chans[:0]
			for i := 0; i < n; i++ {
				ch, err := fsrv.Submit(conduit.Request{Tenant: "bench", Workload: aes.Name, Policy: "Conduit"})
				if err != nil {
					bb.Fatal(err)
				}
				chans = append(chans, ch)
			}
			for _, ch := range chans {
				if resp := <-ch; resp.Err != nil {
					bb.Fatal(resp.Err)
				}
			}
			submitted += n
		}
	}), 0)
	out = append(out, faultFree)
	fsrv.Drain()

	// The same stream once more with a tracer armed but sampling off —
	// the configuration every fleet target runs in. The tracer's whole
	// disabled-path cost is one nil/sampling check at admission, and the
	// derived entry pins that at noise against the untraced path.
	tsrv := conduit.NewServer(cfg, conduit.ServeOptions{
		Concurrency: 2, QueueDepth: 2 * 4096, Prefork: 2,
		Trace: &conduit.TraceOptions{},
	})
	if err := tsrv.Register(aes.Name, aes.Source); err != nil {
		return err
	}
	traceOff := record("serve/trace-off-overhead", testing.Benchmark(func(bb *testing.B) {
		bb.ReportAllocs()
		chans := make([]<-chan *conduit.Response, 0, 4096)
		for submitted := 0; submitted < bb.N; {
			n := 4096
			if rest := bb.N - submitted; rest < n {
				n = rest
			}
			chans = chans[:0]
			for i := 0; i < n; i++ {
				ch, err := tsrv.Submit(conduit.Request{Tenant: "bench", Workload: aes.Name, Policy: "Conduit"})
				if err != nil {
					bb.Fatal(err)
				}
				chans = append(chans, ch)
			}
			for _, ch := range chans {
				if resp := <-ch; resp.Err != nil {
					bb.Fatal(resp.Err)
				}
			}
			submitted += n
		}
	}), 0)
	out = append(out, traceOff)
	tsrv.Drain()

	f := benchFile{
		Schema:  "conduit-bench/v1",
		Scale:   scale,
		GoArch:  runtime.GOARCH,
		Benches: out,
		Derived: map[string]string{
			"bitwise_kernel_speedup_vs_generic":      fmt.Sprintf("%.1fx", bitGen.NsPerOp/bitSpec.NsPerOp),
			"arith_kernel_speedup_vs_generic":        fmt.Sprintf("%.1fx", ariGen.NsPerOp/ariSpec.NsPerOp),
			"engine_coalesced_drain_speedup_vs_heap": fmt.Sprintf("%.1fx", simHeap.NsPerOp/simBucket.NsPerOp),
			"calendar_fastforward_speedup_vs_loop":   fmt.Sprintf("%.0fx", ffLoop.NsPerOp/ffBatch.NsPerOp),
			"cluster_simulated_speedup_4shard":       fmt.Sprintf("%.2fx", float64(oneDev.Elapsed)/float64(fourDev.Elapsed)),
			"open_loop_served_req_per_s":             fmt.Sprintf("%.0f", 1e9/openLoop.NsPerOp),
			"fault_free_overhead_pct":                fmt.Sprintf("%.1f%%", (faultFree.NsPerOp/openLoop.NsPerOp-1)*100),
			"trace_off_overhead_pct":                 fmt.Sprintf("%.1f%%", (traceOff.NsPerOp/openLoop.NsPerOp-1)*100),
		},
	}
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s (bitwise kernels %s, arith kernels %s vs generic)\n",
		path, f.Derived["bitwise_kernel_speedup_vs_generic"], f.Derived["arith_kernel_speedup_vs_generic"])
	return nil
}
