// Command experiments regenerates the paper's tables and figures from the
// simulator. Each experiment prints the same rows/series the paper
// reports; EXPERIMENTS.md records the expected qualitative shape.
//
// Usage:
//
//	experiments [-scale N] [-workers N] [-fig10window N] [fig4|fig5|fig7a|fig7b|fig8|fig9|fig10|grid|table3|overhead|ablation|all]
//
// Shared workload x policy sweeps execute concurrently across -workers
// goroutines, deploying each workload once and restoring the post-deploy
// snapshot per policy; tables are identical to a serial sweep.
package main

import (
	"flag"
	"fmt"
	"os"

	conduit "conduit"
)

func main() {
	scale := flag.Int("scale", 2, "workload scale factor (1 = smoke test)")
	window := flag.Int("fig10window", 12000, "instruction window for Fig 10")
	csv := flag.Bool("csv", false, "emit CSV instead of aligned tables")
	workers := flag.Int("workers", 0, "concurrent sweep runs (0 = GOMAXPROCS)")
	flag.Parse()

	which := "all"
	if flag.NArg() > 0 {
		which = flag.Arg(0)
	}
	e := conduit.NewExperiments(conduit.DefaultConfig(), *scale)
	e.SetWorkers(*workers)

	type exp struct {
		name string
		run  func() (*conduit.Table, error)
	}
	exps := []exp{
		{"grid", e.GridTable},
		{"table3", e.Table3},
		{"fig4", e.Fig4},
		{"fig5", e.Fig5},
		{"fig7a", e.Fig7a},
		{"fig7b", e.Fig7b},
		{"fig8", e.Fig8},
		{"fig9", e.Fig9},
		{"fig10", func() (*conduit.Table, error) { return e.Fig10(*window, 72) }},
		{"overhead", e.Overhead},
		{"ablation", e.AblationCostFeatures},
		{"ablation-width", e.AblationVectorWidth},
		{"ablation-channels", e.AblationChannels},
	}
	ran := false
	for _, x := range exps {
		if which != "all" && which != x.name {
			continue
		}
		ran = true
		t, err := x.run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", x.name, err)
			os.Exit(1)
		}
		if *csv {
			t.CSV(os.Stdout)
		} else {
			t.Render(os.Stdout)
		}
		fmt.Println()
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "experiments: unknown experiment %q\n", which)
		os.Exit(2)
	}
}
