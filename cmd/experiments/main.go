// Command experiments regenerates the paper's tables and figures from the
// simulator. Each experiment prints the same rows/series the paper
// reports; EXPERIMENTS.md records the expected qualitative shape.
//
// Usage:
//
//	experiments [-scale N] [-workers N] [-fig10window N] [fig4|fig5|fig7a|fig7b|fig8|fig9|fig10|grid|table3|overhead|ablation|scaling|latency|availability|all]
//	experiments -benchjson BENCH_pr5.json [-scale N]
//
// Shared workload x policy sweeps execute concurrently across -workers
// goroutines, deploying each workload once and restoring the post-deploy
// snapshot per policy; tables are identical to a serial sweep.
//
// The scaling experiment shards every workload across multi-device
// Conduit clusters, sweeping shard counts up to -shards (powers of two
// plus -shards itself) and reporting scale-out speedup against the
// 1-shard cluster; combine with -csv for the scaling curve as data.
//
// The latency experiment drives the serving stack open-loop: for each
// policy in -lpolicies, each cluster size up to -shards, and each
// offered load in -loads, it replays a deterministic -arrival schedule
// against a pooled server for -loaddur and reports achieved throughput,
// goodput under the -slo deadline, shed/expired counts, and
// p50/p99/p999 wall-clock latency; combine with -csv for the
// throughput-latency curve as data (LATENCY_pr5.csv is a committed
// example).
//
// The availability experiment injects deterministic seeded faults at the
// dispatch, pool, and device seams of a sharded deployment and sweeps
// fault rate (-faultrates) against a ladder of recovery configurations
// (none, retry, retry+hedge, retry+hedge+breaker), reporting request
// success rate, SLO attainment in simulated time, and retry
// amplification per cell (-availreq requests each); combine with -csv
// for the sweep as data (AVAIL_pr8.csv is a committed example). Unlike
// the latency experiment it runs entirely in simulated time, so its
// table is byte-identical run to run.
//
// -benchjson runs the data-plane perf-trajectory benchmarks (kernel
// microbenches vs the generic reference, a Fig. 4 regeneration, and a
// deploy-amortized device run) and records them as JSON; scripts/bench.sh
// wraps it. -cpuprofile/-memprofile write pprof profiles of whatever
// experiments the invocation runs.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	conduit "conduit"
)

func main() {
	scale := flag.Int("scale", 2, "workload scale factor (1 = smoke test)")
	window := flag.Int("fig10window", 12000, "instruction window for Fig 10")
	csv := flag.Bool("csv", false, "emit CSV instead of aligned tables")
	workers := flag.Int("workers", 0, "concurrent sweep runs (0 = GOMAXPROCS)")
	shards := flag.Int("shards", 4, "maximum cluster size for the scaling and latency experiments")
	loads := flag.String("loads", "100,200,400", "offered-load points (req/s) for the latency experiment")
	lpolicies := flag.String("lpolicies", "Conduit", "policies the latency experiment sweeps")
	arrival := flag.String("arrival", "poisson", "latency-experiment arrival process: poisson, burst, diurnal")
	slo := flag.Duration("slo", 50*time.Millisecond, "latency-experiment per-request deadline (0 disables)")
	loaddur := flag.Duration("loaddur", 300*time.Millisecond, "latency-experiment schedule span per point")
	faultrates := flag.String("faultrates", "0,0.02,0.05,0.1", "master fault rates the availability experiment sweeps")
	availreq := flag.Int("availreq", 200, "requests per availability cell")
	benchjson := flag.String("benchjson", "", "run the perf-trajectory benchmarks and write the JSON record to `file`")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to `file`")
	memprofile := flag.String("memprofile", "", "write an allocation profile to `file` on exit")
	flag.Parse()

	lat := latencyFlags{loads: *loads, policies: *lpolicies, arrival: *arrival, slo: *slo, dur: *loaddur}
	av := availFlags{rates: *faultrates, requests: *availreq}
	// All work happens in run so its defers — in particular stopping the
	// CPU profile and writing the heap profile — execute before os.Exit.
	os.Exit(run(*scale, *window, *shards, *csv, *workers, lat, av, *benchjson, *cpuprofile, *memprofile))
}

// latencyFlags carries the latency experiment's knobs into run.
type latencyFlags struct {
	loads    string
	policies string
	arrival  string
	slo      time.Duration
	dur      time.Duration
}

// options parses the flag strings; a bad -loads entry fails the
// experiment with a useful error instead of a silent zero.
func (f latencyFlags) options(maxShards int) (conduit.LatencyOptions, error) {
	var loads []float64
	for _, s := range strings.Split(f.loads, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
		if err != nil || v <= 0 {
			return conduit.LatencyOptions{}, fmt.Errorf("bad -loads entry %q", s)
		}
		loads = append(loads, v)
	}
	slo := f.slo
	if slo == 0 {
		slo = -1 // LatencyOptions: negative disables deadlines
	}
	policies := strings.Split(f.policies, ",")
	for i := range policies {
		policies[i] = strings.TrimSpace(policies[i])
	}
	return conduit.LatencyOptions{
		Policies: policies,
		Shards:   conduit.ShardCounts(maxShards),
		Loads:    loads,
		Duration: f.dur,
		Arrival:  f.arrival,
		SLO:      slo,
	}, nil
}

// availFlags carries the availability experiment's knobs into run.
type availFlags struct {
	rates    string
	requests int
}

func (f availFlags) options() (conduit.AvailabilityOptions, error) {
	var rates []float64
	for _, s := range strings.Split(f.rates, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
		if err != nil || v < 0 {
			return conduit.AvailabilityOptions{}, fmt.Errorf("bad -faultrates entry %q", s)
		}
		rates = append(rates, v)
	}
	return conduit.AvailabilityOptions{FaultRates: rates, Requests: f.requests}, nil
}

func run(scale, window, shards int, csv bool, workers int, lat latencyFlags, av availFlags, benchjson, cpuprofile, memprofile string) int {
	if cpuprofile != "" {
		f, err := os.Create(cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: cpuprofile: %v\n", err)
			return 1
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: cpuprofile: %v\n", err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}
	defer func() {
		if memprofile == "" {
			return
		}
		f, err := os.Create(memprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: memprofile: %v\n", err)
			return
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: memprofile: %v\n", err)
		}
	}()

	if benchjson != "" {
		if err := runBenchJSON(benchjson, scale); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: benchjson: %v\n", err)
			return 1
		}
		return 0
	}

	which := "all"
	if flag.NArg() > 0 {
		which = flag.Arg(0)
	}
	e := conduit.NewExperiments(conduit.DefaultConfig(), scale)
	e.SetWorkers(workers)

	type exp struct {
		name string
		run  func() (*conduit.Table, error)
	}
	exps := []exp{
		{"grid", e.GridTable},
		{"table3", e.Table3},
		{"fig4", e.Fig4},
		{"fig5", e.Fig5},
		{"fig7a", e.Fig7a},
		{"fig7b", e.Fig7b},
		{"fig8", e.Fig8},
		{"fig9", e.Fig9},
		{"fig10", func() (*conduit.Table, error) { return e.Fig10(window, 72) }},
		{"overhead", e.Overhead},
		{"ablation", e.AblationCostFeatures},
		{"ablation-width", e.AblationVectorWidth},
		{"ablation-channels", e.AblationChannels},
		{"scaling", func() (*conduit.Table, error) {
			return e.ClusterScaling("Conduit", conduit.ShardCounts(shards))
		}},
		{"latency", func() (*conduit.Table, error) {
			opts, err := lat.options(shards)
			if err != nil {
				return nil, err
			}
			return e.LatencyCurve(opts)
		}},
		{"availability", func() (*conduit.Table, error) {
			opts, err := av.options()
			if err != nil {
				return nil, err
			}
			return e.Availability(opts)
		}},
	}
	ran := false
	for _, x := range exps {
		// "all" skips the latency sweep (it measures wall-clock serving
		// behavior, so including it would break "all"'s byte-identical
		// output contract) and the availability sweep (deterministic, but
		// a robustness artifact, not a paper figure). Request them by
		// name.
		if which != x.name && (which != "all" || x.name == "latency" || x.name == "availability") {
			continue
		}
		ran = true
		t, err := x.run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", x.name, err)
			return 1
		}
		if csv {
			t.CSV(os.Stdout)
		} else {
			t.Render(os.Stdout)
		}
		fmt.Println()
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "experiments: unknown experiment %q\n", which)
		return 2
	}
	return 0
}
