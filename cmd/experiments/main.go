// Command experiments regenerates the paper's tables and figures from the
// simulator. Each experiment prints the same rows/series the paper
// reports; EXPERIMENTS.md records the expected qualitative shape.
//
// Usage:
//
//	experiments [-scale N] [-workers N] [-fig10window N] [fig4|fig5|fig7a|fig7b|fig8|fig9|fig10|grid|table3|overhead|ablation|scaling|all]
//	experiments -benchjson BENCH_pr4.json [-scale N]
//
// Shared workload x policy sweeps execute concurrently across -workers
// goroutines, deploying each workload once and restoring the post-deploy
// snapshot per policy; tables are identical to a serial sweep.
//
// The scaling experiment shards every workload across multi-device
// Conduit clusters, sweeping shard counts up to -shards (powers of two
// plus -shards itself) and reporting scale-out speedup against the
// 1-shard cluster; combine with -csv for the scaling curve as data.
//
// -benchjson runs the data-plane perf-trajectory benchmarks (kernel
// microbenches vs the generic reference, a Fig. 4 regeneration, and a
// deploy-amortized device run) and records them as JSON; scripts/bench.sh
// wraps it. -cpuprofile/-memprofile write pprof profiles of whatever
// experiments the invocation runs.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	conduit "conduit"
)

func main() {
	scale := flag.Int("scale", 2, "workload scale factor (1 = smoke test)")
	window := flag.Int("fig10window", 12000, "instruction window for Fig 10")
	csv := flag.Bool("csv", false, "emit CSV instead of aligned tables")
	workers := flag.Int("workers", 0, "concurrent sweep runs (0 = GOMAXPROCS)")
	shards := flag.Int("shards", 4, "maximum cluster size for the scaling experiment")
	benchjson := flag.String("benchjson", "", "run the perf-trajectory benchmarks and write the JSON record to `file`")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to `file`")
	memprofile := flag.String("memprofile", "", "write an allocation profile to `file` on exit")
	flag.Parse()

	// All work happens in run so its defers — in particular stopping the
	// CPU profile and writing the heap profile — execute before os.Exit.
	os.Exit(run(*scale, *window, *shards, *csv, *workers, *benchjson, *cpuprofile, *memprofile))
}

func run(scale, window, shards int, csv bool, workers int, benchjson, cpuprofile, memprofile string) int {
	if cpuprofile != "" {
		f, err := os.Create(cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: cpuprofile: %v\n", err)
			return 1
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: cpuprofile: %v\n", err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}
	defer func() {
		if memprofile == "" {
			return
		}
		f, err := os.Create(memprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: memprofile: %v\n", err)
			return
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: memprofile: %v\n", err)
		}
	}()

	if benchjson != "" {
		if err := runBenchJSON(benchjson, scale); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: benchjson: %v\n", err)
			return 1
		}
		return 0
	}

	which := "all"
	if flag.NArg() > 0 {
		which = flag.Arg(0)
	}
	e := conduit.NewExperiments(conduit.DefaultConfig(), scale)
	e.SetWorkers(workers)

	type exp struct {
		name string
		run  func() (*conduit.Table, error)
	}
	exps := []exp{
		{"grid", e.GridTable},
		{"table3", e.Table3},
		{"fig4", e.Fig4},
		{"fig5", e.Fig5},
		{"fig7a", e.Fig7a},
		{"fig7b", e.Fig7b},
		{"fig8", e.Fig8},
		{"fig9", e.Fig9},
		{"fig10", func() (*conduit.Table, error) { return e.Fig10(window, 72) }},
		{"overhead", e.Overhead},
		{"ablation", e.AblationCostFeatures},
		{"ablation-width", e.AblationVectorWidth},
		{"ablation-channels", e.AblationChannels},
		{"scaling", func() (*conduit.Table, error) {
			return e.ClusterScaling("Conduit", conduit.ShardCounts(shards))
		}},
	}
	ran := false
	for _, x := range exps {
		if which != "all" && which != x.name {
			continue
		}
		ran = true
		t, err := x.run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", x.name, err)
			return 1
		}
		if csv {
			t.CSV(os.Stdout)
		} else {
			t.Render(os.Stdout)
		}
		fmt.Println()
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "experiments: unknown experiment %q\n", which)
		return 2
	}
	return 0
}
