// Command conduit-sim runs one workload under one execution policy on the
// simulated Conduit-capable SSD and prints timing, energy, offloading
// fractions, and tail latencies.
//
// Usage:
//
//	conduit-sim -workload aes -policy Conduit -scale 4
//	conduit-sim -list
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	conduit "conduit"
	"conduit/internal/stats"
	"conduit/internal/workloads"
)

func main() {
	workload := flag.String("workload", "aes", "workload: aes, xor-filter, heat-3d, jacobi-1d, llama2-inference, llm-training")
	policy := flag.String("policy", "Conduit", "execution policy (see -list)")
	scale := flag.Int("scale", 2, "workload scale factor")
	list := flag.Bool("list", false, "list workloads and policies, then exit")
	flag.Parse()

	if *list {
		fmt.Println("workloads:")
		for _, w := range workloads.All(1) {
			fmt.Printf("  %-18s (%s)\n", workloads.Canonical(w.Name), w.Name)
		}
		fmt.Println("policies: ", strings.Join(conduit.Policies(), ", "))
		fmt.Println("ablations:", strings.Join(conduit.AblationPolicies(), ", "))
		return
	}

	w, ok := workloads.Find(*workload, *scale)
	if !ok {
		fmt.Fprintf(os.Stderr, "conduit-sim: unknown workload %q (try -list)\n", *workload)
		os.Exit(2)
	}
	src := w.Source

	cfg := conduit.DefaultConfig()
	sys := conduit.NewSystem(cfg)
	c, err := conduit.Compile(src, &cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "conduit-sim: compile: %v\n", err)
		os.Exit(1)
	}
	res, err := sys.RunCompiled(c, *policy)
	if err != nil {
		fmt.Fprintf(os.Stderr, "conduit-sim: run: %v\n", err)
		os.Exit(1)
	}

	t := stats.NewTable(fmt.Sprintf("%s under %s (scale %d)", src.Name, *policy, *scale),
		"metric", "value")
	t.AddRowf("instructions", len(c.Prog.Insts))
	t.AddRowf("vectorizable_%", c.Report.VectorizablePercent())
	t.AddRowf("elapsed", res.Elapsed)
	t.AddRowf("energy_J", fmt.Sprintf("%.3g", res.TotalEnergy()))
	t.AddRowf("movement_energy_share",
		res.MovementEnergy/nonzero(res.TotalEnergy()))
	if len(res.Decisions) > 0 {
		fr := conduit.Fractions(res.Decisions)
		t.AddRowf("frac_ISP", fr[0])
		t.AddRowf("frac_PuD", fr[1])
		t.AddRowf("frac_IFP", fr[2])
		t.AddRowf("offloader_overhead", res.OverheadTime)
	}
	t.AddRowf("p99_latency", res.InstLatencies.P99())
	t.AddRowf("p99.99_latency", res.InstLatencies.P9999())
	t.Render(os.Stdout)
}

func nonzero(f float64) float64 {
	if f == 0 {
		return 1
	}
	return f
}
