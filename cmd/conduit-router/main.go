// Command conduit-router is the front end of the conduit wire tier: it
// dials a fleet of conduit-target processes, places workloads onto them
// by consistent hashing (each workload's home target keeps its device
// pools and memoized results hot), drives an open-loop generated load
// through the fleet, and merges per-target accounting into one
// fleet-wide report with exact p50/p99/p999.
//
// The recovery ladder of cmd/conduit-serve is lifted across process
// boundaries: -retries walks the hash ring's failover order when a
// target errors or drains, -hedge duplicates straggling requests to the
// next target after -hedgeafter, and -breaker N opens a per-target
// circuit breaker after N consecutive failures (cooldown counted in
// refused requests, so trips replay deterministically).
//
// Usage:
//
//	conduit-target -listen 127.0.0.1:9071 &   # start a fleet first
//	conduit-target -listen 127.0.0.1:9072 &
//	conduit-router -targets 127.0.0.1:9071,127.0.0.1:9072 \
//	    -open 400 -duration 3s -retries 3 -breaker 4
//
// -benchjson FILE merges the routed-fleet throughput and latency
// results into a conduit-bench/v1 record (creating it if absent) —
// scripts/bench.sh uses this for the committed BENCH_pr10.json.
//
// -trace FILE records the fleet-merged flight: the router's placement
// spans (attempts, retries, hedges, breaker refusals) with each
// target's serve/cluster/device spans — shipped home at the tail of
// the v2 Response frame — grafted under them, one Perfetto process per
// participant, all on the deterministic simulated timeline.
// -tracesample N samples every Nth routed request fleet-wide (targets
// record whatever the wire marks sampled). -metrics FILE ("-" for
// stdout) scrapes every target's metrics over the wire, relabels each
// sample with target="<name>", and folds them into one fleet scrape
// alongside the router's own series.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"conduit/internal/histo"
	"conduit/internal/loadgen"
	"conduit/internal/metrics"
	"conduit/internal/router"
	"conduit/internal/stats"
	"conduit/internal/trace"
	"conduit/internal/wire"
	"conduit/internal/workloads"
)

func main() {
	targets := flag.String("targets", "", "comma-separated target addresses to dial (required)")
	mix := flag.String("mix", "all", `comma-separated workload mix, or "all" for every workload the fleet serves`)
	policies := flag.String("policies", "Conduit", "comma-separated policy mix requests draw from")
	tenants := flag.Int("tenants", 4, "tenants the requests round-robin across")
	seed := flag.Uint64("seed", 1, "load-generator root RNG seed")
	open := flag.Float64("open", 200, "open-loop offered load in req/s")
	arrival := flag.String("arrival", "poisson", "arrival process: poisson, burst, diurnal")
	duration := flag.Duration("duration", 2*time.Second, "load-generation window")
	slo := flag.Duration("slo", 0, "per-request deadline (0 = none)")
	retries := flag.Int("retries", 3, "max attempts per request across the failover order")
	hedge := flag.Bool("hedge", false, "hedge straggling requests on the next target")
	hedgeafter := flag.Duration("hedgeafter", 50*time.Millisecond, "straggler patience before a hedge")
	breaker := flag.Int("breaker", 0, "per-target breaker consecutive-failure threshold (0 disables)")
	cooldown := flag.Int("cooldown", 8, "requests an open breaker refuses before a half-open probe")
	vnodes := flag.Int("vnodes", 0, "virtual nodes per target on the hash ring (0 = default)")
	drain := flag.Bool("drain", true, "drain the targets when the run ends")
	benchjson := flag.String("benchjson", "", "merge routed-fleet results into the conduit-bench/v1 record at `file`")
	traceOut := flag.String("trace", "", "write the fleet-merged Chrome/Perfetto trace to `file` (one process per target)")
	tracesample := flag.Int("tracesample", 0, "trace every Nth routed request (0 with -trace set traces all)")
	metricsOut := flag.String("metrics", "", `write the fleet-merged metrics scrape (text exposition) to "file" ("-" = stdout)`)
	flag.Parse()

	if *targets == "" {
		fmt.Fprintln(os.Stderr, "conduit-router: -targets is required")
		os.Exit(2)
	}
	var clients []*router.Client
	for _, addr := range strings.Split(*targets, ",") {
		addr = strings.TrimSpace(addr)
		if addr == "" {
			continue
		}
		c, err := router.Dial(addr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "conduit-router: %v\n", err)
			os.Exit(1)
		}
		clients = append(clients, c)
		fmt.Printf("target %s @ %s: %d workload(s), %d shard(s)\n",
			c.Name(), addr, len(c.Workloads()), c.Shards())
	}

	// Resolve the workload mix against what the fleet actually serves:
	// the intersection of every target's advertised suite (placement
	// assumes any target can serve any workload — the CODA-style
	// co-location contract).
	serveable := intersect(clients)
	if len(serveable) == 0 {
		fmt.Fprintln(os.Stderr, "conduit-router: targets share no workload")
		os.Exit(2)
	}
	var names []string
	if *mix == "all" {
		names = serveable
	} else {
		set := make(map[string]bool, len(serveable))
		for _, w := range serveable {
			set[w] = true
		}
		for _, w := range strings.Split(*mix, ",") {
			w = strings.TrimSpace(w)
			// Canonicalize aliases ("aes" -> "AES") the way targets
			// register them, so the mix matches the advertised suite.
			if reg, ok := workloads.Find(w, 1); ok {
				w = reg.Name
			}
			if !set[w] {
				fmt.Fprintf(os.Stderr, "conduit-router: fleet does not serve workload %q\n", w)
				os.Exit(2)
			}
			names = append(names, w)
		}
	}

	var tracer *trace.Tracer
	if *traceOut != "" || *tracesample > 0 {
		every := *tracesample
		if every < 1 {
			every = 1 // -trace alone records every routed request
		}
		tracer = trace.New(trace.Options{
			SampleEvery: every,
			Now:         func() int64 { return time.Now().UnixNano() },
		})
	}
	rt, err := router.New(clients, router.Options{
		Retries:          *retries,
		Hedge:            *hedge,
		HedgeAfter:       *hedgeafter,
		BreakerThreshold: *breaker,
		BreakerCooldown:  *cooldown,
		Vnodes:           *vnodes,
		Clock:            router.Clock{Now: time.Now, After: time.After},
		Tracer:           tracer,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "conduit-router: %v\n", err)
		os.Exit(1)
	}
	for _, w := range names {
		fmt.Printf("  %-22s -> %s\n", w, rt.Home(w))
	}

	schedule, err := loadgen.Generate(loadgen.Spec{
		Arrival: *arrival, QPS: *open, Duration: *duration,
		Seed: *seed, Tenants: *tenants,
		Workloads: names, Policies: strings.Split(*policies, ","), SLO: *slo,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "conduit-router: %v\n", err)
		os.Exit(2)
	}
	fmt.Printf("offering %g req/s (%s arrivals, %d events) for %v across %d target(s)\n\n",
		*open, *arrival, len(schedule), *duration, len(clients))

	var (
		mu     sync.Mutex
		wg     sync.WaitGroup
		tally  = map[wire.Code]int64{}
		lost   int64
		byWhom = map[string]int64{}
	)
	start := time.Now()
	loadgen.Replay(schedule, 1, func(ev loadgen.Event) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, name, err := rt.Do(wire.Request{
				Tenant: ev.Tenant, Workload: ev.Workload, Policy: ev.Policy,
				DeadlineNS: int64(ev.Deadline),
			})
			mu.Lock()
			if err != nil {
				lost++
			} else {
				tally[resp.Code]++
				byWhom[name]++
			}
			mu.Unlock()
		}()
	})
	wg.Wait()
	elapsed := time.Since(start)

	fleet, missing := rt.Snapshot()
	printReport(rt, fleet, missing, tally, lost, byWhom, len(schedule), elapsed)

	if *benchjson != "" {
		if err := mergeBenchJSON(*benchjson, len(clients), len(schedule), elapsed, tally, rt.Wall(), fleet.Wall); err != nil {
			fmt.Fprintf(os.Stderr, "conduit-router: benchjson: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("merged routed-fleet results -> %s\n", *benchjson)
	}
	if *metricsOut != "" {
		if err := writeFleetMetrics(*metricsOut, rt); err != nil {
			fmt.Fprintf(os.Stderr, "conduit-router: metrics: %v\n", err)
			os.Exit(1)
		}
	}
	if *traceOut != "" {
		if err := writeFleetTrace(*traceOut, tracer, rt); err != nil {
			fmt.Fprintf(os.Stderr, "conduit-router: trace: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote fleet trace -> %s\n", *traceOut)
	}

	if *drain {
		// DrainAll's ordering contract (sorted targets, name-sorted pool
		// rows inside each ack) makes this final fleet pool report
		// byte-stable run to run.
		for _, td := range rt.DrainAll() {
			leaked := int64(0)
			for _, p := range td.Ack.Pools {
				if !p.Closed {
					leaked++
				}
			}
			fmt.Printf("drained %s: %d pool(s), %d unclosed\n", td.Target, len(td.Ack.Pools), leaked)
			for _, p := range td.Ack.Pools {
				fmt.Printf("  pool %-24s preforked=%d hits=%d misses=%d quarantined=%d repairs=%d idle=%d closed=%v\n",
					p.Name, p.Preforked, p.Hits, p.Misses, p.Quarantined, p.Repairs, p.Idle, p.Closed)
			}
		}
	}
	rt.Close()
}

// writeFleetMetrics renders the fleet-merged metrics scrape as text
// exposition ("-" writes to stdout).
func writeFleetMetrics(path string, rt *router.Router) error {
	samples, missing := rt.FleetMetrics()
	out := os.Stdout
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	if err := metrics.WriteText(out, samples); err != nil {
		return err
	}
	if len(missing) > 0 {
		fmt.Fprintf(os.Stderr, "conduit-router: no metrics from: %s\n", strings.Join(missing, ", "))
	}
	return nil
}

// writeFleetTrace merges the router's own placement spans with the
// spans every target attached to sampled responses, one Perfetto
// process per participant, keyed by target name.
func writeFleetTrace(path string, tracer *trace.Tracer, rt *router.Router) error {
	procs := []trace.Process{{Name: "router", Spans: tracer.Spans()}}
	remote := rt.RemoteSpans()
	names := make([]string, 0, len(remote))
	for name := range remote {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		spans := remote[name]
		trace.SortSpans(spans)
		procs = append(procs, trace.Process{Name: "target " + name, Spans: spans})
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := trace.WritePerfetto(f, procs); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// intersect returns the sorted workloads every target advertises.
func intersect(clients []*router.Client) []string {
	count := make(map[string]int)
	for _, c := range clients {
		for _, w := range c.Workloads() {
			count[w]++
		}
	}
	var out []string
	for w, n := range count {
		if n == len(clients) {
			out = append(out, w)
		}
	}
	sort.Strings(out)
	return out
}

func printReport(rt *router.Router, fleet router.Fleet, missing []string,
	tally map[wire.Code]int64, lost int64, byWhom map[string]int64, offered int, elapsed time.Duration) {

	ft := stats.NewTable("fleet report (merged per-target accounting)",
		"tenant", "requests", "errors", "shed", "expired", "shared",
		"retries", "hedges", "fallback", "sim_ms", "energy_J")
	for _, row := range fleet.Tenants {
		ft.AddRowf(row.Tenant, row.Requests, row.Errors, row.Shed, row.Expired, row.Shared,
			row.Recovery.Retries, row.Recovery.Hedges, row.Recovery.Fallbacks,
			fmt.Sprintf("%.3f", float64(row.SimNS)/1e6),
			fmt.Sprintf("%.3f", row.EnergyJ))
	}
	ft.Render(os.Stdout)
	fmt.Println()

	s := rt.Stats()
	rtab := stats.NewTable("router recovery", "metric", "value")
	rtab.AddRowf("requests", s.Requests)
	rtab.AddRowf("attempts", s.Attempts)
	rtab.AddRowf("retries", s.Retries)
	rtab.AddRowf("hedges", s.Hedges)
	rtab.AddRowf("hedge_wins", s.HedgeWins)
	rtab.AddRowf("breaker_refusals", s.Refusals)
	rtab.AddRowf("transport_lost", lost)
	rtab.AddRowf("ok", tally[wire.CodeOK])
	rtab.AddRowf("overloaded", tally[wire.CodeOverloaded])
	rtab.AddRowf("deadline", tally[wire.CodeDeadline])
	rtab.AddRowf("errors", tally[wire.CodeError]+tally[wire.CodeDraining]+tally[wire.CodeCircuitOpen]+tally[wire.CodeBadRequest])
	rtab.AddRowf("throughput_rps", fmt.Sprintf("%.1f", float64(offered)/elapsed.Seconds()))
	rtab.Render(os.Stdout)
	fmt.Println()

	names := make([]string, 0, len(byWhom))
	for name := range byWhom {
		names = append(names, name)
	}
	sort.Strings(names)
	pt := stats.NewTable("placement", "target", "responses")
	for _, name := range names {
		pt.AddRowf(name, byWhom[name])
	}
	pt.Render(os.Stdout)
	fmt.Println()

	// Device-pool health across the fleet, quarantine/repair cycles
	// included: rows sorted by target name, then by the targets' own
	// name-sorted pool rows.
	snaps := append([]wire.Snapshot(nil), fleet.Targets...)
	sort.Slice(snaps, func(i, j int) bool { return snaps[i].Target < snaps[j].Target })
	dt := stats.NewTable("device pools", "target", "pool",
		"preforked", "hits", "misses", "quarantined", "repairs", "idle")
	pools := 0
	for _, snap := range snaps {
		for _, p := range snap.Pools {
			pools++
			dt.AddRowf(snap.Target, p.Name, p.Preforked, p.Hits, p.Misses,
				p.Quarantined, p.Repairs, p.Idle)
		}
	}
	if pools > 0 {
		dt.Render(os.Stdout)
		fmt.Println()
	}

	lt := stats.NewTable("latency (ms)", "histogram", "count", "p50", "p99", "p999", "max")
	addLat := func(name string, h *histo.Histogram) {
		lt.AddRowf(name, h.Count(),
			fmt.Sprintf("%.3f", float64(h.P50())/1e6),
			fmt.Sprintf("%.3f", float64(h.P99())/1e6),
			fmt.Sprintf("%.3f", float64(h.P999())/1e6),
			fmt.Sprintf("%.3f", float64(h.Max())/1e6))
	}
	addLat("router end-to-end", rt.Wall())
	addLat("fleet (merged targets)", fleet.Wall)
	for _, snap := range fleet.Targets {
		if snap.Wall != nil {
			addLat("target "+snap.Target, snap.Wall)
		}
	}
	lt.Render(os.Stdout)
	if len(missing) > 0 {
		fmt.Printf("\nWARNING: no snapshot from: %s\n", strings.Join(missing, ", "))
	}
	fmt.Println()

	if brs := rt.Breakers(); len(brs) > 0 {
		bt := stats.NewTable("per-target circuit breakers", "target", "state", "trips")
		for _, b := range brs {
			bt.AddRowf(b.Name, b.State.String(), b.Trips)
		}
		bt.Render(os.Stdout)
		fmt.Println()
	}
}

// benchResult / benchFile mirror the conduit-bench/v1 schema written by
// cmd/experiments; mergeBenchJSON appends the routed-fleet entries to an
// existing record (or starts a fresh one) so one BENCH_prN.json carries
// both the data-plane and the wire-tier trajectory.
type benchResult struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	MBPerSec    float64 `json:"mb_per_s,omitempty"`
}

type benchFile struct {
	Schema  string            `json:"schema"`
	Scale   int               `json:"scale"`
	GoArch  string            `json:"goarch"`
	Benches []benchResult     `json:"benches"`
	Derived map[string]string `json:"derived"`
}

func mergeBenchJSON(path string, nTargets, offered int, elapsed time.Duration,
	tally map[wire.Code]int64, routerWall, fleetWall *histo.Histogram) error {

	bf := benchFile{Schema: "conduit-bench/v1", GoArch: runtime.GOARCH, Derived: map[string]string{}}
	if raw, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(raw, &bf); err != nil {
			return fmt.Errorf("existing %s: %w", path, err)
		}
		if bf.Schema != "conduit-bench/v1" {
			return fmt.Errorf("existing %s has schema %q", path, bf.Schema)
		}
		if bf.Derived == nil {
			bf.Derived = map[string]string{}
		}
	} else if !errors.Is(err, os.ErrNotExist) {
		return err
	}

	prefix := fmt.Sprintf("wire/routed-open-loop-%dx", nTargets)
	// Drop stale entries from a previous run of the same fleet shape so
	// the merge is idempotent.
	kept := bf.Benches[:0]
	for _, b := range bf.Benches {
		if !strings.HasPrefix(b.Name, prefix) {
			kept = append(kept, b)
		}
	}
	bf.Benches = kept
	bf.Benches = append(bf.Benches, benchResult{
		Name:       prefix + "/request",
		Iterations: offered,
		NsPerOp:    float64(elapsed.Nanoseconds()) / float64(max(offered, 1)),
	})
	bf.Derived[prefix+"/throughput_rps"] = fmt.Sprintf("%.1f", float64(offered)/elapsed.Seconds())
	bf.Derived[prefix+"/ok"] = fmt.Sprintf("%d", tally[wire.CodeOK])
	bf.Derived[prefix+"/router_p50_ms"] = fmt.Sprintf("%.3f", float64(routerWall.P50())/1e6)
	bf.Derived[prefix+"/router_p99_ms"] = fmt.Sprintf("%.3f", float64(routerWall.P99())/1e6)
	bf.Derived[prefix+"/router_p999_ms"] = fmt.Sprintf("%.3f", float64(routerWall.P999())/1e6)
	bf.Derived[prefix+"/fleet_p99_ms"] = fmt.Sprintf("%.3f", float64(fleetWall.P99())/1e6)
	bf.Derived[prefix+"/fleet_p999_ms"] = fmt.Sprintf("%.3f", float64(fleetWall.P999())/1e6)

	out, err := json.MarshalIndent(&bf, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}
