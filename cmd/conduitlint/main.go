// Conduitlint machine-checks the simulator's determinism and ownership
// invariants: no wall-clock or global-rand nondeterminism in simulator
// packages (nondeterm), no output driven by map iteration order
// (maporder), arena pages recycled at most once and dead afterwards
// (arenaowner), and every owned DevicePool closed on all non-panic
// paths (poolleak).
//
// Run it standalone:
//
//	go run ./cmd/conduitlint ./...
//
// or as a vet tool, which is how CI runs it:
//
//	go install ./cmd/conduitlint
//	go vet -vettool=$(go env GOPATH)/bin/conduitlint ./...
//
// Exemptions live only in the committed allowlist
// (internal/lint/allow/conduitlint.allow); there is no inline ignore
// pragma. `conduitlint help` describes each analyzer.
package main

import (
	"conduit/internal/lint"
	"conduit/internal/lint/driver"
)

func main() {
	driver.Main(lint.Analyzers())
}
