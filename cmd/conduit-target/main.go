// Command conduit-target runs one conduit serving target: a TCP server
// exposing the in-process serving engine — registered workloads, device
// pools, shard clusters, and the recovery ladder — behind the framed
// wire protocol of internal/wire.
//
// On startup the target registers its workload mix, binds -listen, and
// prints "LISTENING <addr>" on stdout (fleet scripts and the wiretest
// harness parse this line, so -listen 127.0.0.1:0 is the usual spelling:
// the kernel picks the port). Each connection is greeted with a Hello
// frame naming the target and its workloads; requests then flow through
// the same open-loop Submit path as in-process serving, with responses
// written back out of order and correlated by request ID. A Drain frame,
// SIGTERM, or SIGINT triggers the graceful shutdown: admission stops,
// in-flight requests finish and are answered, every device pool closes,
// and the final pool counters are acknowledged so the router can verify
// no fork leaked.
//
// Usage:
//
//	conduit-target -listen 127.0.0.1:9070 -mix aes,llama2 -shards 4
//	conduit-target -faults 0.05 -retries 3 -hedge -breaker 4 -fallback Host-Only
//
// See cmd/conduit-router for the front end that places load across a
// fleet of these.
package main

import (
	"os"

	"conduit/internal/target"
)

func main() {
	os.Exit(target.Main(os.Args[1:], os.Stdout, os.Stderr))
}
