// Command conduit-serve runs the pooled, batched request-serving engine
// against a built-in closed-loop load generator and prints a per-tenant
// throughput/latency report.
//
// Each of -clients goroutines draws (workload, policy) pairs from the
// requested mix with a deterministic per-client RNG and issues requests
// back-to-back until -duration elapses; the server multiplexes them over
// pool-managed Deployment forks (one NVMe deploy per workload per device,
// ever), optionally coalescing identical in-flight requests. On
// completion the server drains gracefully and reports per-tenant and
// per-pool statistics.
//
// With -shards N > 1 every workload registers as a multi-device cluster:
// its arrays shard row-block-wise across N simulated drives (broadcast
// arrays replicate), each request scatters into per-shard sub-runs on
// pooled clones, and the pool report shows one "workload#shard" row per
// device.
//
// Usage:
//
//	conduit-serve -clients 32 -duration 2s
//	conduit-serve -clients 64 -duration 5s -mix aes,jacobi-1d -policies Conduit,BW-Offloading
//	conduit-serve -clients 32 -duration 2s -shards 4
//	conduit-serve -list
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	conduit "conduit"
	"conduit/internal/sim"
	"conduit/internal/stats"
	"conduit/internal/workloads"
)

func main() {
	clients := flag.Int("clients", 32, "closed-loop client goroutines")
	duration := flag.Duration("duration", 2*time.Second, "load-generation window")
	mix := flag.String("mix", "all", `comma-separated workload mix, or "all" for the evaluation suite`)
	policies := flag.String("policies", "Conduit", "comma-separated policy mix each client draws from")
	scale := flag.Int("scale", 1, "workload scale factor")
	concurrency := flag.Int("concurrency", 0, "simultaneously executing requests (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 0, "admission-queue depth (0 = 4x concurrency)")
	prefork := flag.Int("prefork", 2, "pre-forked devices per application (0 disables pooling)")
	shards := flag.Int("shards", 1, "simulated drives per workload (>1 registers sharded clusters)")
	tenants := flag.Int("tenants", 4, "tenants the clients round-robin across")
	coalesce := flag.Bool("coalesce", true, "share one execution among identical in-flight requests")
	memoize := flag.Bool("memoize", false, "cache each (workload, policy) result for the whole run")
	seed := flag.Uint64("seed", 1, "load-generator RNG seed")
	list := flag.Bool("list", false, "list workloads and policies, then exit")
	flag.Parse()

	if *list {
		fmt.Println("workloads:")
		for _, w := range workloads.All(1) {
			fmt.Printf("  %-18s (%s)\n", workloads.Canonical(w.Name), w.Name)
		}
		fmt.Println("policies:  ", strings.Join(conduit.Policies(), ", "))
		fmt.Println("ablations: ", strings.Join(conduit.AblationPolicies(), ", "))
		return
	}
	if *tenants < 1 {
		*tenants = 1
	}

	// Resolve the workload mix against the evaluation suite.
	var chosen []workloads.Named
	if *mix == "all" {
		chosen = workloads.All(*scale)
	} else {
		seen := make(map[string]bool)
		for _, name := range strings.Split(*mix, ",") {
			w, ok := workloads.Find(strings.TrimSpace(name), *scale)
			if !ok {
				fmt.Fprintf(os.Stderr, "conduit-serve: unknown workload %q (try -list)\n", name)
				os.Exit(2)
			}
			if seen[w.Name] {
				continue
			}
			seen[w.Name] = true
			chosen = append(chosen, w)
		}
	}

	// Validate the policy mix up front so a typo fails fast, not per
	// request mid-run.
	polMix := strings.Split(*policies, ",")
	for i, p := range polMix {
		polMix[i] = strings.TrimSpace(p)
		if !conduit.KnownPolicy(polMix[i]) {
			fmt.Fprintf(os.Stderr, "conduit-serve: unknown policy %q (try -list)\n", polMix[i])
			os.Exit(2)
		}
	}

	srv := conduit.NewServer(conduit.DefaultConfig(), conduit.ServeOptions{
		Concurrency: *concurrency,
		QueueDepth:  *queue,
		Prefork:     *prefork,
		Coalesce:    *coalesce,
		Memoize:     *memoize,
	})
	if *shards < 1 {
		*shards = 1
	}
	fmt.Printf("registering %d workload(s) at scale %d across %d shard(s) each ...\n",
		len(chosen), *scale, *shards)
	deployStart := time.Now()
	for _, w := range chosen {
		var err error
		if *shards > 1 {
			err = srv.RegisterSharded(w.Name, w.Source, *shards)
		} else {
			err = srv.Register(w.Name, w.Source)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "conduit-serve: register %s: %v\n", w.Name, err)
			os.Exit(1)
		}
	}
	fmt.Printf("deployed in %v; serving %d clients for %v (policies: %s)\n",
		time.Since(deployStart).Round(time.Millisecond), *clients, *duration, strings.Join(polMix, ", "))

	var served, failed int64
	start := time.Now()
	deadline := start.Add(*duration)
	var wg sync.WaitGroup
	for i := 0; i < *clients; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			rng := sim.NewRNG(*seed + uint64(id)*0x9e3779b9)
			tenant := fmt.Sprintf("tenant-%02d", id%*tenants)
			for time.Now().Before(deadline) {
				req := conduit.Request{
					Tenant:   tenant,
					Workload: chosen[rng.Intn(len(chosen))].Name,
					Policy:   polMix[rng.Intn(len(polMix))],
				}
				if _, err := srv.Do(req); err != nil {
					atomic.AddInt64(&failed, 1)
				} else {
					atomic.AddInt64(&served, 1)
				}
			}
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)
	srv.Drain()

	fmt.Println()
	srv.Report().Render(os.Stdout)
	fmt.Println()

	pools := srv.PoolStats()
	names := make([]string, 0, len(pools))
	for name := range pools {
		names = append(names, name)
	}
	sort.Strings(names)
	pt := stats.NewTable("device pools (pre-forked Deployment clones)",
		"application", "preforked", "pool_hits", "inline_clones", "idle")
	for _, name := range names {
		ps := pools[name]
		pt.AddRowf(name, ps.Preforked, ps.Hits, ps.Misses, ps.Idle)
	}
	if len(names) > 0 {
		pt.Render(os.Stdout)
		fmt.Println()
	}

	st := stats.NewTable("load summary", "metric", "value")
	st.AddRowf("clients", *clients)
	st.AddRowf("wall_time", elapsed.Round(time.Millisecond).String())
	st.AddRowf("requests_served", served)
	st.AddRowf("requests_failed", failed)
	st.AddRowf("throughput_req_per_s", float64(served)/elapsed.Seconds())
	st.Render(os.Stdout)
	if failed > 0 {
		os.Exit(1)
	}
}
