// Command conduit-serve runs the pooled, batched request-serving engine
// under generated or replayed traffic and prints per-tenant
// throughput/latency/SLO reports.
//
// Three traffic modes:
//
//   - Closed-loop (default): -clients goroutines draw (workload, policy)
//     pairs from the requested mix with deterministic per-client RNG
//     substreams (loadgen.Stream seed-splitting) and issue requests
//     back-to-back until -duration elapses. Offered load self-throttles
//     to service capacity — useful for capacity probing, blind to
//     overload.
//   - Open-loop (-open N): a deterministic -arrival schedule (poisson,
//     burst, or diurnal) at N req/s is generated up front and submitted
//     on its own clock, without waiting for completions. A full admission
//     queue sheds requests (ErrOverloaded), and requests that outlive
//     their -slo budget in the queue are dropped at dispatch without ever
//     consuming a pooled fork — the overload/tail-latency regime a
//     closed loop can never reach.
//   - Replay (-replay trace.jsonl): re-issue a recorded trace open-loop
//     with its recorded arrival spacing, time-scaled by -speed. The
//     workload mix is taken from the trace itself.
//
// Any mode combined with -record FILE captures the actually issued
// request stream (with observed arrival offsets) as a JSONL trace — a
// reproducible artifact of the run that -replay re-issues identically.
//
// With -shards N > 1 every workload registers as a multi-device cluster:
// its arrays shard row-block-wise across N simulated drives (broadcast
// arrays replicate), each request scatters into per-shard sub-runs on
// pooled clones, and the pool report shows one "workload#shard" row per
// device.
//
// With -faults RATE > 0 the server injects deterministic seeded faults
// (seed -faultseed) at the dispatch, pool, and device seams — the same
// rate mapping as the availability experiment — and serves through them
// with the recovery stack: -retries attempts per shard with simulated
// backoff, -hedge duplicate dispatch against stragglers, per-shard
// circuit breakers (-breaker N consecutive failures) degrading to the
// -fallback policy. -faultlog records the injected schedule as JSONL;
// -faultreplay re-injects a recorded schedule instead of drawing fresh.
// The run ends with a fault/recovery report, breaker states, and pool
// quarantine counts.
//
// -trace FILE records sampled requests as a Chrome/Perfetto trace on
// the simulated timeline (admission, coalesce, shard scatter, device
// runs, and every recovery action as instant events); -tracejsonl FILE
// writes the raw sorted span JSONL instead, and -tracesample N samples
// every Nth request (defaults to every request when a trace output is
// set). -metrics FILE ("-" for stdout) writes a text metrics scrape —
// counters, gauges, and latency histograms filled from the engine's
// accounting at scrape time. Tracing is off by default and costs one
// nil check when disabled (BenchmarkServeTraceOff).
//
// Usage:
//
//	conduit-serve -clients 32 -duration 2s
//	conduit-serve -open 500 -arrival poisson -slo 50ms -duration 2s
//	conduit-serve -open 800 -arrival burst -duration 2s -record burst.jsonl
//	conduit-serve -replay burst.jsonl -speed 2
//	conduit-serve -clients 32 -duration 2s -shards 4
//	conduit-serve -open 300 -duration 2s -shards 2 -faults 0.05 -hedge -breaker 4 -fallback CPU
//	conduit-serve -clients 8 -duration 2s -trace trace.json -metrics -
//	conduit-serve -list
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	conduit "conduit"
	"conduit/internal/loadgen"
	"conduit/internal/metrics"
	"conduit/internal/sim"
	"conduit/internal/stats"
	"conduit/internal/trace"
	"conduit/internal/workloads"
)

func main() {
	clients := flag.Int("clients", 32, "closed-loop client goroutines")
	duration := flag.Duration("duration", 2*time.Second, "load-generation window")
	mix := flag.String("mix", "all", `comma-separated workload mix, or "all" for the evaluation suite`)
	policies := flag.String("policies", "Conduit", "comma-separated policy mix requests draw from")
	scale := flag.Int("scale", 1, "workload scale factor")
	concurrency := flag.Int("concurrency", 0, "simultaneously executing requests (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 0, "admission-queue depth (0 = 4x concurrency)")
	prefork := flag.Int("prefork", 2, "pre-forked devices per application (0 disables pooling)")
	shards := flag.Int("shards", 1, "simulated drives per workload (>1 registers sharded clusters)")
	tenants := flag.Int("tenants", 4, "tenants the requests round-robin across")
	coalesce := flag.Bool("coalesce", true, "share one execution among identical in-flight requests")
	memoize := flag.Bool("memoize", false, "cache each (workload, policy) result for the whole run")
	seed := flag.Uint64("seed", 1, "load-generator root RNG seed (split per client/substream)")
	open := flag.Float64("open", 0, "open-loop offered load in req/s (0 = closed-loop -clients mode)")
	arrival := flag.String("arrival", "poisson", "open-loop arrival process: poisson, burst, diurnal")
	slo := flag.Duration("slo", 0, "per-request deadline; queued requests past it are dropped undispatched (0 = none)")
	record := flag.String("record", "", "write the issued request stream as a JSONL trace to `file`")
	replay := flag.String("replay", "", "re-issue the JSONL trace in `file` instead of generating load")
	speed := flag.Float64("speed", 1, "replay time scale (2 = twice as fast as recorded)")
	faults := flag.Float64("faults", 0, "master injected-fault rate, mapped onto the dispatch/pool/device seams (0 disables chaos)")
	faultseed := flag.Uint64("faultseed", 42, "chaos RNG seed (independent of -seed)")
	retries := flag.Int("retries", 3, "max attempts per shard sub-run when recovery is active")
	hedge := flag.Bool("hedge", false, "hedge straggler shards with a duplicate dispatch")
	hedgethreshold := flag.Float64("hedgethreshold", 8, "straggler multiple (vs the fastest shard) that triggers a hedge")
	breaker := flag.Int("breaker", 0, "circuit-breaker consecutive-failure threshold per shard (0 disables)")
	fallback := flag.String("fallback", "", "policy served while a breaker is open (empty refuses with an error)")
	faultlog := flag.String("faultlog", "", "write the injected-fault schedule as a JSONL record to `file`")
	faultreplay := flag.String("faultreplay", "", "replay the recorded fault schedule in `file` instead of drawing from -faults")
	traceOut := flag.String("trace", "", "write sampled request spans as a Chrome/Perfetto trace to `file`")
	tracejsonl := flag.String("tracejsonl", "", "write sampled request spans as JSONL to `file`")
	tracesample := flag.Int("tracesample", 0, "trace every Nth request (0 with a -trace output set traces all)")
	metricsOut := flag.String("metrics", "", `write the metrics scrape (text exposition) to "file" ("-" = stdout)`)
	list := flag.Bool("list", false, "list workloads and policies, then exit")
	flag.Parse()

	if *list {
		fmt.Println("workloads:")
		for _, w := range workloads.All(1) {
			fmt.Printf("  %-18s (%s)\n", workloads.Canonical(w.Name), w.Name)
		}
		fmt.Println("policies:  ", strings.Join(conduit.Policies(), ", "))
		fmt.Println("ablations: ", strings.Join(conduit.AblationPolicies(), ", "))
		fmt.Println("arrivals:   poisson, burst, diurnal (open-loop); closed loop via -clients")
		return
	}
	if *tenants < 1 {
		*tenants = 1
	}
	if *shards < 1 {
		*shards = 1
	}

	// Replay mode loads its schedule first: the trace, not -mix, decides
	// which workloads must be registered.
	var replayTrace []loadgen.Event
	if *replay != "" {
		var err error
		replayTrace, err = loadgen.ReadFile(*replay)
		if err != nil {
			fmt.Fprintf(os.Stderr, "conduit-serve: %v\n", err)
			os.Exit(2)
		}
		if len(replayTrace) == 0 {
			fmt.Fprintf(os.Stderr, "conduit-serve: trace %s is empty\n", *replay)
			os.Exit(2)
		}
	}

	// Resolve the workload mix against the evaluation suite (or, when
	// replaying, against the union of workloads the trace names).
	var chosen []workloads.Named
	switch {
	case *replay != "":
		seen := make(map[string]bool)
		for _, ev := range replayTrace {
			if seen[ev.Workload] {
				continue
			}
			seen[ev.Workload] = true
			w, ok := workloads.Find(ev.Workload, *scale)
			if !ok {
				fmt.Fprintf(os.Stderr, "conduit-serve: trace names unknown workload %q\n", ev.Workload)
				os.Exit(2)
			}
			chosen = append(chosen, w)
		}
		sort.Slice(chosen, func(i, j int) bool { return chosen[i].Name < chosen[j].Name })
	case *mix == "all":
		chosen = workloads.All(*scale)
	default:
		seen := make(map[string]bool)
		for _, name := range strings.Split(*mix, ",") {
			w, ok := workloads.Find(strings.TrimSpace(name), *scale)
			if !ok {
				fmt.Fprintf(os.Stderr, "conduit-serve: unknown workload %q (try -list)\n", name)
				os.Exit(2)
			}
			if seen[w.Name] {
				continue
			}
			seen[w.Name] = true
			chosen = append(chosen, w)
		}
	}

	// Validate the policy mix up front so a typo fails fast, not per
	// request mid-run. Replays trust the trace's policies the same way.
	polMix := strings.Split(*policies, ",")
	for i, p := range polMix {
		polMix[i] = strings.TrimSpace(p)
		if !conduit.KnownPolicy(polMix[i]) {
			fmt.Fprintf(os.Stderr, "conduit-serve: unknown policy %q (try -list)\n", polMix[i])
			os.Exit(2)
		}
	}

	opts := conduit.ServeOptions{
		Concurrency: *concurrency,
		QueueDepth:  *queue,
		Prefork:     *prefork,
		Coalesce:    *coalesce,
		Memoize:     *memoize,
	}
	if *traceOut != "" || *tracejsonl != "" || *tracesample > 0 {
		every := *tracesample
		if every < 1 {
			every = 1 // a trace output with no cadence records every request
		}
		opts.Trace = &conduit.TraceOptions{
			SampleEvery: every,
			Now:         func() int64 { return time.Now().UnixNano() },
		}
	}
	chaos := *faults > 0 || *faultreplay != ""
	if chaos {
		opts.Recovery = conduit.RecoveryOptions{
			MaxAttempts:      *retries,
			Hedge:            *hedge,
			HedgeThreshold:   *hedgethreshold,
			BreakerThreshold: *breaker,
			FallbackPolicy:   *fallback,
		}
		if *fallback != "" && !conduit.KnownPolicy(*fallback) {
			fmt.Fprintf(os.Stderr, "conduit-serve: unknown -fallback policy %q (try -list)\n", *fallback)
			os.Exit(2)
		}
	}
	switch {
	case *faultreplay != "":
		rf, err := conduit.ReadFaultLog(*faultreplay)
		if err != nil {
			fmt.Fprintf(os.Stderr, "conduit-serve: faultreplay: %v\n", err)
			os.Exit(2)
		}
		opts.ReplayFaults = rf
	case *faults > 0:
		cfg := conduit.FaultsAtRate(*faults, 0, *faultseed)
		opts.Faults = &cfg
	}
	srv := conduit.NewServer(conduit.DefaultConfig(), opts)
	fmt.Printf("registering %d workload(s) at scale %d across %d shard(s) each ...\n",
		len(chosen), *scale, *shards)
	deployStart := time.Now()
	for _, w := range chosen {
		var err error
		if *shards > 1 {
			err = srv.RegisterSharded(w.Name, w.Source, *shards)
		} else {
			err = srv.Register(w.Name, w.Source)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "conduit-serve: register %s: %v\n", w.Name, err)
			os.Exit(1)
		}
	}
	names := make([]string, len(chosen))
	for i, w := range chosen {
		names[i] = w.Name
	}

	var rec *loadgen.Recorder
	if *record != "" {
		rec = loadgen.NewRecorder()
	}
	var tally traffic
	start := time.Now()
	switch {
	case *replay != "":
		fmt.Printf("deployed in %v; replaying %d-event trace at %gx speed\n",
			time.Since(deployStart).Round(time.Millisecond), len(replayTrace), *speed)
		tally = serveOpenLoop(srv, replayTrace, *speed, rec)
	case *open > 0:
		schedule, err := loadgen.Generate(loadgen.Spec{
			Arrival: *arrival, QPS: *open, Duration: *duration,
			Seed: *seed, Tenants: *tenants,
			Workloads: names, Policies: polMix, SLO: *slo,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "conduit-serve: %v\n", err)
			os.Exit(2)
		}
		fmt.Printf("deployed in %v; offering %g req/s (%s arrivals, %d events) for %v (policies: %s)\n",
			time.Since(deployStart).Round(time.Millisecond), *open, *arrival, len(schedule), *duration,
			strings.Join(polMix, ", "))
		tally = serveOpenLoop(srv, schedule, 1, rec)
	default:
		fmt.Printf("deployed in %v; serving %d closed-loop clients for %v (policies: %s)\n",
			time.Since(deployStart).Round(time.Millisecond), *clients, *duration, strings.Join(polMix, ", "))
		tally = serveClosedLoop(srv, closedLoopConfig{
			clients: *clients, duration: *duration, seed: *seed,
			tenants: *tenants, workloads: names, policies: polMix, slo: *slo,
		}, rec)
	}
	elapsed := time.Since(start)
	srv.Drain()

	if rec != nil {
		events := rec.Events()
		if err := loadgen.WriteFile(*record, events); err != nil {
			fmt.Fprintf(os.Stderr, "conduit-serve: record: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("recorded %d-event trace -> %s\n", len(events), *record)
	}

	if *tracejsonl != "" || *traceOut != "" {
		spans := srv.Tracer().Spans()
		if *tracejsonl != "" {
			if err := writeSpans(*tracejsonl, spans, false); err != nil {
				fmt.Fprintf(os.Stderr, "conduit-serve: tracejsonl: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("wrote %d-span JSONL trace -> %s\n", len(spans), *tracejsonl)
		}
		if *traceOut != "" {
			if err := writeSpans(*traceOut, spans, true); err != nil {
				fmt.Fprintf(os.Stderr, "conduit-serve: trace: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("wrote %d-span Perfetto trace -> %s\n", len(spans), *traceOut)
		}
	}
	if *metricsOut != "" {
		out := os.Stdout
		if *metricsOut != "-" {
			f, err := os.Create(*metricsOut)
			if err != nil {
				fmt.Fprintf(os.Stderr, "conduit-serve: metrics: %v\n", err)
				os.Exit(1)
			}
			defer f.Close()
			out = f
		}
		if err := metrics.WriteText(out, srv.Metrics()); err != nil {
			fmt.Fprintf(os.Stderr, "conduit-serve: metrics: %v\n", err)
			os.Exit(1)
		}
	}

	fmt.Println()
	srv.Report().Render(os.Stdout)
	fmt.Println()

	pools := srv.PoolStats()
	poolNames := make([]string, 0, len(pools))
	for name := range pools {
		poolNames = append(poolNames, name)
	}
	sort.Strings(poolNames)
	pt := stats.NewTable("device pools (pre-forked Deployment clones)",
		"application", "preforked", "pool_hits", "inline_clones", "idle", "quarantined", "repairs")
	for _, name := range poolNames {
		ps := pools[name]
		pt.AddRowf(name, ps.Preforked, ps.Hits, ps.Misses, ps.Idle, ps.Quarantined, ps.Repairs)
	}
	if len(poolNames) > 0 {
		pt.Render(os.Stdout)
		fmt.Println()
	}

	total := srv.Total()
	if chaos {
		log := srv.FaultLog()
		kinds := make(map[conduit.FaultKind]int)
		for _, f := range log {
			kinds[f.Kind]++
		}
		kindNames := make([]string, 0, len(kinds))
		for k := range kinds {
			kindNames = append(kindNames, string(k))
		}
		sort.Strings(kindNames)
		ft := stats.NewTable("fault injection & recovery", "metric", "value")
		ft.AddRowf("faults_injected", len(log))
		for _, k := range kindNames {
			ft.AddRowf("injected_"+k, kinds[conduit.FaultKind(k)])
		}
		ft.AddRowf("attempts", total.Recovery.Attempts)
		ft.AddRowf("retries", total.Recovery.Retries)
		ft.AddRowf("hedges", total.Recovery.Hedges)
		ft.AddRowf("hedge_wins", total.Recovery.HedgeWins)
		ft.AddRowf("fallbacks", total.Recovery.Fallbacks)
		ft.AddRowf("backoff_sim_ms", float64(total.Recovery.BackoffSim)/1e6)
		ft.Render(os.Stdout)
		fmt.Println()
		if brk := srv.Breakers(); len(brk) > 0 {
			bt := stats.NewTable("circuit breakers", "breaker", "state", "trips")
			for _, b := range brk {
				bt.AddRowf(b.Name, b.State.String(), b.Trips)
			}
			bt.Render(os.Stdout)
			fmt.Println()
		}
		if *faultlog != "" {
			if err := conduit.WriteFaultLog(*faultlog, log); err != nil {
				fmt.Fprintf(os.Stderr, "conduit-serve: faultlog: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("recorded %d-fault schedule -> %s\n\n", len(log), *faultlog)
		}
	}
	st := stats.NewTable("load summary", "metric", "value")
	st.AddRowf("wall_time", elapsed.Round(time.Millisecond).String())
	st.AddRowf("requests_offered", tally.offered)
	st.AddRowf("requests_served", tally.served)
	st.AddRowf("requests_shed", tally.shed)
	st.AddRowf("requests_expired", tally.expired)
	st.AddRowf("requests_failed", tally.failed)
	st.AddRowf("throughput_req_per_s", float64(tally.served)/elapsed.Seconds())
	st.AddRowf("goodput_req_per_s", float64(total.Attained)/elapsed.Seconds())
	st.AddRowf("slo_attainment_pct", fmt.Sprintf("%.1f", 100*total.Attainment()))
	st.Render(os.Stdout)
	// Under chaos, exhausted-recovery failures are the experiment working
	// as designed; only fault-free runs treat backend errors as fatal.
	if tally.failed > 0 && !chaos {
		os.Exit(1)
	}
}

// writeSpans exports the server's sampled spans as a single-process
// Perfetto trace or as JSONL.
func writeSpans(path string, spans []*trace.Span, perfetto bool) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if perfetto {
		err = trace.WritePerfetto(f, []trace.Process{{Name: "conduit-serve", Spans: spans}})
	} else {
		err = trace.WriteJSONL(f, spans)
	}
	if err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// traffic tallies one load-generation run. Shed and expired requests are
// the open-loop subsystem working as designed, not failures: only
// backend errors fail the command.
type traffic struct {
	offered int64 // every request the generator attempted
	served  int64 // completed successfully
	shed    int64 // rejected at admission (queue full)
	expired int64 // dropped at dispatch (deadline passed in queue)
	failed  int64 // backend errors
}

// serveOpenLoop paces schedule against the wall clock (scaled by speed),
// submitting without waiting for completions, then drains every response.
// issue order — and therefore the recorded trace — is exactly the
// schedule order regardless of timing.
func serveOpenLoop(srv *conduit.Server, schedule []loadgen.Event, speed float64, rec *loadgen.Recorder) traffic {
	var t traffic
	chans := make([]<-chan *conduit.Response, 0, len(schedule))
	loadgen.Replay(schedule, speed, func(ev loadgen.Event) {
		t.offered++
		if rec != nil {
			rec.Record(ev.Tenant, ev.Workload, ev.Policy, ev.Deadline)
		}
		ch, err := srv.Submit(conduit.Request{
			Tenant: ev.Tenant, Workload: ev.Workload, Policy: ev.Policy, Deadline: ev.Deadline,
		})
		switch {
		case err == nil:
			chans = append(chans, ch)
		case errors.Is(err, conduit.ErrOverloaded):
			t.shed++
		default:
			t.failed++
		}
	})
	for _, ch := range chans {
		resp := <-ch
		switch {
		case resp.Err == nil:
			t.served++
		case errors.Is(resp.Err, conduit.ErrDeadlineExceeded):
			t.expired++
		default:
			t.failed++
		}
	}
	return t
}

type closedLoopConfig struct {
	clients   int
	duration  time.Duration
	seed      uint64
	tenants   int
	workloads []string
	policies  []string
	slo       time.Duration
}

// serveClosedLoop runs the classic -clients loop: each client issues
// back-to-back blocking requests until the deadline. Per-client RNGs are
// loadgen.Stream substreams of the root seed — a SplitMix64-style split,
// so client streams are decorrelated and collision-free where the old
// seed + id*0x9e3779b9 derivation made nearby (seed, id) pairs share
// entire streams.
func serveClosedLoop(srv *conduit.Server, cfg closedLoopConfig, rec *loadgen.Recorder) traffic {
	var offered, served, expired, failed int64
	deadline := time.Now().Add(cfg.duration)
	var wg sync.WaitGroup
	for i := 0; i < cfg.clients; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			rng := sim.NewRNG(loadgen.Stream(cfg.seed, uint64(id)))
			tenant := fmt.Sprintf("tenant-%02d", id%cfg.tenants)
			for time.Now().Before(deadline) {
				req := conduit.Request{
					Tenant:   tenant,
					Workload: cfg.workloads[rng.Intn(len(cfg.workloads))],
					Policy:   cfg.policies[rng.Intn(len(cfg.policies))],
					Deadline: cfg.slo,
				}
				atomic.AddInt64(&offered, 1)
				if rec != nil {
					rec.Record(req.Tenant, req.Workload, req.Policy, req.Deadline)
				}
				_, err := srv.Do(req)
				switch {
				case err == nil:
					atomic.AddInt64(&served, 1)
				case errors.Is(err, conduit.ErrDeadlineExceeded):
					atomic.AddInt64(&expired, 1)
				default:
					atomic.AddInt64(&failed, 1)
				}
			}
		}(i)
	}
	wg.Wait()
	return traffic{offered: offered, served: served, expired: expired, failed: failed}
}
