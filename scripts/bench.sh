#!/usr/bin/env bash
# bench.sh — record the data-plane and serving perf trajectory.
#
# Runs the kernel microbenchmarks, the macro benchmarks (including the
# open-loop serving path plus its fault-tolerant twin), a routed
# 2-target fleet sweep over the wire tier, and writes the
# machine-readable record the repo commits per PR (BENCH_pr10.json for
# this one). Usage:
#
#   scripts/bench.sh [out.json]
#
# Environment:
#   SCALE      workload scale for the macro benches (default 2)
#   BENCHTIME  go test -benchtime for the printed benches (default 5x)
#   FLEET_QPS  offered load for the routed-fleet sweep (default 300)
#   FLEET_DUR  load window for the routed-fleet sweep (default 2s)
set -euo pipefail
cd "$(dirname "$0")/.." || exit 1

out="${1:-BENCH_pr10.json}"
scale="${SCALE:-2}"
benchtime="${BENCHTIME:-5x}"
fleet_qps="${FLEET_QPS:-300}"
fleet_dur="${FLEET_DUR:-2s}"

echo "== perf-trajectory record -> $out (scale $scale)"
go run ./cmd/experiments -benchjson "$out" -scale "$scale"

echo
echo "== kernel microbenchmarks (specialized vs generic reference)"
go test -run '^$' -bench 'BenchmarkVecmathKernels' -benchmem ./internal/vecmath

echo
echo "== simulation-engine microbenchmarks (bucket vs heap oracle, fast-forward)"
go test -run '^$' -bench 'BenchmarkEngineScheduleDrain|BenchmarkCalendarFastForward' -benchmem ./internal/sim

echo
echo "== macro benchmarks"
go test -run '^$' -bench 'BenchmarkFig4CaseStudy|BenchmarkDeviceRunHot|BenchmarkClusterScatterGather|BenchmarkServeOpenLoopSubmit|BenchmarkServeFaultFree|BenchmarkServeTraceOff' \
  -benchmem -benchtime "$benchtime" .

echo
echo "== histogram microbenchmarks (serving accounting hot path)"
go test -run '^$' -bench 'BenchmarkHistogram' -benchmem ./internal/histo

echo
echo "== routed 2-target fleet (wire tier, open loop @ ${fleet_qps} req/s for ${fleet_dur})"
fleetdir=$(mktemp -d)
go build -o "$fleetdir/" ./cmd/conduit-target ./cmd/conduit-router
"$fleetdir/conduit-target" -listen 127.0.0.1:0 -name t0 -prefork 2 >"$fleetdir/t0.log" 2>&1 &
pid0=$!
"$fleetdir/conduit-target" -listen 127.0.0.1:0 -name t1 -prefork 2 >"$fleetdir/t1.log" 2>&1 &
pid1=$!
trap 'kill "$pid0" "$pid1" 2>/dev/null || true; rm -rf "$fleetdir"' EXIT
for _ in $(seq 1 50); do
  grep -q LISTENING "$fleetdir/t0.log" && grep -q LISTENING "$fleetdir/t1.log" && break
  sleep 0.1
done
a0=$(sed -n 's/^LISTENING //p' "$fleetdir/t0.log")
a1=$(sed -n 's/^LISTENING //p' "$fleetdir/t1.log")
"$fleetdir/conduit-router" -targets "$a0,$a1" \
  -open "$fleet_qps" -duration "$fleet_dur" -retries 3 -breaker 4 \
  -benchjson "$out"
wait
