#!/usr/bin/env bash
# bench.sh — record the data-plane and serving perf trajectory.
#
# Runs the kernel microbenchmarks, the macro benchmarks (including the
# open-loop serving path plus its fault-tolerant twin), and writes the
# machine-readable record the repo commits per PR (BENCH_pr8.json for
# this one). Usage:
#
#   scripts/bench.sh [out.json]
#
# Environment:
#   SCALE      workload scale for the macro benches (default 2)
#   BENCHTIME  go test -benchtime for the printed benches (default 5x)
set -euo pipefail
cd "$(dirname "$0")/.." || exit 1

out="${1:-BENCH_pr8.json}"
scale="${SCALE:-2}"
benchtime="${BENCHTIME:-5x}"

echo "== perf-trajectory record -> $out (scale $scale)"
go run ./cmd/experiments -benchjson "$out" -scale "$scale"

echo
echo "== kernel microbenchmarks (specialized vs generic reference)"
go test -run '^$' -bench 'BenchmarkVecmathKernels' -benchmem ./internal/vecmath

echo
echo "== simulation-engine microbenchmarks (bucket vs heap oracle, fast-forward)"
go test -run '^$' -bench 'BenchmarkEngineScheduleDrain|BenchmarkCalendarFastForward' -benchmem ./internal/sim

echo
echo "== macro benchmarks"
go test -run '^$' -bench 'BenchmarkFig4CaseStudy|BenchmarkDeviceRunHot|BenchmarkClusterScatterGather|BenchmarkServeOpenLoopSubmit|BenchmarkServeFaultFree' \
  -benchmem -benchtime "$benchtime" .

echo
echo "== histogram microbenchmarks (serving accounting hot path)"
go test -run '^$' -bench 'BenchmarkHistogram' -benchmem ./internal/histo
