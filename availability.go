package conduit

import (
	"fmt"

	"conduit/internal/faultinject"
	"conduit/internal/loadgen"
	"conduit/internal/stats"
	"conduit/internal/workloads"
)

// AvailabilityOptions configures the fault-rate x recovery-config sweep
// (Experiments.Availability). Zero values select the documented defaults.
type AvailabilityOptions struct {
	// Workload is the served application (default aes).
	Workload string
	// Policy is the offload policy under test (default Conduit).
	Policy string
	// Shards is the cluster width (default 2).
	Shards int
	// Requests is the per-cell request count (default 200).
	Requests int
	// Seed is the root chaos seed; every (rate, config) cell derives its
	// own substream (default 1).
	Seed uint64
	// FaultRates is the master fault-rate axis (default {0, 0.02, 0.05,
	// 0.10}). Each rate r maps onto the seams as: shard failures and
	// slow shards at r, fork failures and poisoned forks at r/2, and
	// dispatch backend errors at r/4 — device faults dominate, matching
	// a storage-centric failure model.
	FaultRates []float64
	// SlowFactor is the latency multiplier injected on slow shards
	// (default 4).
	SlowFactor float64
	// SLOFactor sets the per-request simulated-time SLO as a multiple of
	// the fault-free baseline run (default 3).
	SLOFactor float64
}

func (o *AvailabilityOptions) defaults() {
	if o.Workload == "" {
		o.Workload = "aes"
	}
	if o.Policy == "" {
		o.Policy = "Conduit"
	}
	if o.Shards < 1 {
		o.Shards = 2
	}
	if o.Requests < 1 {
		o.Requests = 200
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if len(o.FaultRates) == 0 {
		o.FaultRates = []float64{0, 0.02, 0.05, 0.10}
	}
	if o.SlowFactor <= 1 {
		o.SlowFactor = 4
	}
	if o.SLOFactor <= 0 {
		o.SLOFactor = 3
	}
}

// availabilityConfigs is the recovery ladder the sweep compares: each
// rung adds one mechanism, so adjacent rows isolate its contribution.
func availabilityConfigs() []struct {
	name string
	rec  RecoveryOptions
} {
	return []struct {
		name string
		rec  RecoveryOptions
	}{
		// HedgeThreshold 8 sits above ordinary plan skew (aes's 2-shard
		// split is naturally ~5.6x uneven) and below the ratio an injected
		// slow shard produces (SlowFactor x the straggler), so hedges fire
		// on degradation, not on the plan.
		{"none", RecoveryOptions{MaxAttempts: 1}},
		{"retry", RecoveryOptions{MaxAttempts: 3}},
		{"retry+hedge", RecoveryOptions{MaxAttempts: 3, Hedge: true, HedgeThreshold: 8}},
		{"retry+hedge+breaker", RecoveryOptions{
			MaxAttempts: 3, Hedge: true, HedgeThreshold: 8,
			BreakerThreshold: 4, FallbackPolicy: "CPU",
		}},
	}
}

// Availability sweeps fault rate x recovery configuration over a sharded
// deployment and reports, per cell: the fraction of requests that
// succeeded (ok_pct), the fraction served within the simulated-time SLO
// (slo_pct, over offered requests — a failed request misses its SLO by
// definition), retry amplification (shard attempts per ideal shard
// attempt), hedge/fallback/breaker-trip counts, and mean/p99 simulated
// service time of successful requests.
//
// Unlike LatencyCurve this sweep is entirely in simulated time — the
// request loop is serial, backoff and failed-attempt costs charge
// RunResult.Elapsed, and every chaos draw derives from Seed — so the
// table is byte-identical run to run.
func (e *Experiments) Availability(opts AvailabilityOptions) (*Table, error) {
	opts.defaults()
	if !KnownPolicy(opts.Policy) {
		return nil, errUnknownPolicy(opts.Policy)
	}
	w, ok := workloads.Find(opts.Workload, e.scale)
	if !ok {
		return nil, fmt.Errorf("conduit: unknown workload %q", opts.Workload)
	}
	cl, err := e.sys.DeployCluster(w.Source, ClusterOptions{Shards: opts.Shards, Prefork: 2})
	if err != nil {
		return nil, err
	}
	defer cl.Close()

	// Fault-free baseline run: its elapsed time anchors the SLO budget.
	base, err := cl.Run(opts.Policy)
	if err != nil {
		return nil, err
	}
	budget := Time(opts.SLOFactor * float64(base.Elapsed))

	t := stats.NewTable(
		fmt.Sprintf("Availability: %s/%s x%d shards, %d requests/cell, SLO %.0fx baseline",
			opts.Workload, opts.Policy, cl.Shards(), opts.Requests, opts.SLOFactor),
		"fault_rate", "config", "ok_pct", "slo_pct", "retry_amp",
		"hedges", "fallbacks", "trips", "mean_ms", "p99_ms")
	cell := 0
	for _, rate := range opts.FaultRates {
		for _, cfg := range availabilityConfigs() {
			inj := faultinject.New(FaultsAtRate(rate, opts.SlowFactor, loadgen.Stream(opts.Seed, uint64(cell))))
			cell++
			r := newResilient(opts.Workload, cl, inj, cfg.rec)
			var okCount, attained int
			var rec Recovery
			lat := stats.NewReservoir()
			for i := 0; i < opts.Requests; i++ {
				res, reqRec, err := r.run(opts.Policy, nil)
				rec.Merge(reqRec)
				if err != nil {
					continue
				}
				okCount++
				lat.Add(res.Elapsed)
				if res.Elapsed <= budget {
					attained++
				}
			}
			var trips int64
			if r.brk != nil {
				trips = r.brk.Trips()
			}
			ideal := float64(opts.Requests * cl.Shards())
			t.AddRowf(rate, cfg.name,
				100*float64(okCount)/float64(opts.Requests),
				100*float64(attained)/float64(opts.Requests),
				float64(rec.Attempts)/ideal,
				rec.Hedges, rec.Fallbacks, trips,
				float64(lat.Mean())/1e6,
				float64(lat.P99())/1e6)
		}
	}
	return t, nil
}
