package conduit_test

import (
	"errors"
	"fmt"
	"reflect"
	"sync"
	"testing"

	conduit "conduit"
	"conduit/internal/workloads"
)

// countersKey flattens a counter set into a comparable snapshot (nil maps
// to nil, so host results compare equal too).
func countersKey(c *conduit.Counters) map[string]int64 {
	if c == nil {
		return nil
	}
	out := make(map[string]int64)
	for _, name := range c.Names() {
		out[name] = c.Get(name)
	}
	return out
}

// TestClusterSingleShardMatchesDeployment is the first half of the
// cluster determinism contract: a 1-shard Cluster run must be
// byte-identical to Deployment.Run on the same workload — same timing,
// energy, latency distribution, decision trace, and substrate counters —
// across host, in-SSD, and ideal policies.
func TestClusterSingleShardMatchesDeployment(t *testing.T) {
	cfg := conduit.DefaultConfig()
	sys := conduit.NewSystem(cfg)
	src := xorFilterSource(3 * 16384)
	c, err := conduit.Compile(src, &cfg)
	if err != nil {
		t.Fatal(err)
	}
	dep, err := sys.Deploy(c)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := sys.DeployCluster(src, conduit.ClusterOptions{Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if cl.Shards() != 1 {
		t.Fatalf("Shards() = %d, want 1", cl.Shards())
	}
	for _, policy := range []string{"CPU", "Conduit", "Ares-Flash", "Ideal"} {
		want, err := dep.Run(policy)
		if err != nil {
			t.Fatalf("%s deployment: %v", policy, err)
		}
		got, err := cl.Run(policy)
		if err != nil {
			t.Fatalf("%s cluster: %v", policy, err)
		}
		if !reflect.DeepEqual(keyOf(got), keyOf(want)) {
			t.Errorf("%s: 1-shard cluster result differs from Deployment.Run\n got: %+v\nwant: %+v",
				policy, keyOf(got), keyOf(want))
		}
		if !reflect.DeepEqual(countersKey(got.Counters), countersKey(want.Counters)) {
			t.Errorf("%s: 1-shard cluster counters differ from Deployment.Run", policy)
		}
		if got.Device != nil {
			t.Errorf("%s: cluster-merged result exposes a device", policy)
		}
	}
}

// TestClusterConcurrentMatchesSerial is the second half of the contract:
// an N-shard concurrent scatter-gather run must be byte-identical to
// executing the shards one by one — and repeatable. The shard count is
// chosen to split the 4-block lane space unevenly (1/1/2 blocks), so the
// merge order discipline is actually exercised. Run with -race to also
// check the scatter path's memory discipline.
func TestClusterConcurrentMatchesSerial(t *testing.T) {
	cfg := conduit.DefaultConfig()
	sys := conduit.NewSystem(cfg)
	src := xorFilterSource(4 * 16384)
	cl, err := sys.DeployCluster(src, conduit.ClusterOptions{Shards: 3, Prefork: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	for _, policy := range []string{"Conduit", "Ares-Flash", "CPU"} {
		serial, err := cl.RunSerial(policy)
		if err != nil {
			t.Fatalf("%s serial: %v", policy, err)
		}
		wantKey, wantCounters := keyOf(serial), countersKey(serial.Counters)
		var wg sync.WaitGroup
		for i := 0; i < 4; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				got, err := cl.Run(policy)
				if err != nil {
					t.Errorf("%s concurrent: %v", policy, err)
					return
				}
				if !reflect.DeepEqual(keyOf(got), wantKey) {
					t.Errorf("%s: concurrent shard execution differs from serial", policy)
				}
				if !reflect.DeepEqual(countersKey(got.Counters), wantCounters) {
					t.Errorf("%s: concurrent counters differ from serial", policy)
				}
			}()
		}
		wg.Wait()
	}
}

// TestClusterShardingSpeedsUpAndScattersWork: sanity on the model — an
// N-shard run of a device policy is no slower than 1-shard end to end
// (each device holds 1/N of the data), and the merged trace still covers
// every shard's instructions.
func TestClusterShardingSpeedsUpAndScattersWork(t *testing.T) {
	cfg := conduit.DefaultConfig()
	sys := conduit.NewSystem(cfg)
	src := xorFilterSource(4 * 16384)
	one, err := sys.DeployCluster(src, conduit.ClusterOptions{Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer one.Close()
	four, err := sys.DeployCluster(src, conduit.ClusterOptions{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer four.Close()
	r1, err := one.Run("Conduit")
	if err != nil {
		t.Fatal(err)
	}
	r4, err := four.Run("Conduit")
	if err != nil {
		t.Fatal(err)
	}
	if r4.Elapsed > r1.Elapsed {
		t.Errorf("4-shard run slower than 1-shard: %v > %v", r4.Elapsed, r1.Elapsed)
	}
	if len(r4.Decisions) == 0 || r4.InstLatencies.Count() == 0 {
		t.Error("merged result lost the per-shard traces")
	}
}

// TestClusterPlanUsesWorkloadMetadata: with a nil Partition option the
// cluster follows internal/workloads shardability — AES round keys
// broadcast, state partitions.
func TestClusterPlanUsesWorkloadMetadata(t *testing.T) {
	w, ok := workloads.Find("aes", 1)
	if !ok {
		t.Fatal("aes workload missing")
	}
	sys := conduit.NewSystem(conduit.DefaultConfig())
	cl, err := sys.DeployCluster(w.Source, conduit.ClusterOptions{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	plan := cl.Plan()
	if !reflect.DeepEqual(plan.Partitioned, []string{"state", "tmp"}) {
		t.Errorf("partitioned = %v, want [state tmp]", plan.Partitioned)
	}
	if len(plan.Broadcast) != 15 || plan.Broadcast[0] != "rk0" {
		t.Errorf("broadcast = %v, want the 15 round-key arrays", plan.Broadcast)
	}
	if plan.Shards != 2 || plan.ReducePages != 0 {
		t.Errorf("plan = %+v", plan)
	}
}

func TestClusterErrors(t *testing.T) {
	cfg := conduit.DefaultConfig()
	sys := conduit.NewSystem(cfg)
	src := xorFilterSource(2 * 16384) // 2 vector blocks
	if _, err := sys.DeployCluster(src, conduit.ClusterOptions{Shards: 5}); !errors.Is(err, conduit.ErrTooManyShards) {
		t.Errorf("oversharded deploy: err = %v, want ErrTooManyShards", err)
	}
	cl, err := sys.DeployCluster(src, conduit.ClusterOptions{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if _, err := cl.Run("NoSuchPolicy"); err == nil {
		t.Error("unknown policy accepted by Run")
	}
	if _, err := cl.RunSerial("NoSuchPolicy"); err == nil {
		t.Error("unknown policy accepted by RunSerial")
	}
}

// TestClusterServeShardedDrainLeavesNoLeakedForks: a drained server must
// leave no buffered fork on any shard of a clustered application, and
// the pool report must carry one closed entry per shard.
func TestClusterServeShardedDrainLeavesNoLeakedForks(t *testing.T) {
	cfg := conduit.DefaultConfig()
	srv := conduit.NewServer(cfg, conduit.ServeOptions{Concurrency: 2, Prefork: 2})
	if err := srv.RegisterSharded("xf", xorFilterSource(4*16384), 2); err != nil {
		t.Fatal(err)
	}
	// A sharded and a plain app coexist on one server.
	if err := srv.Register("plain", quickstartSource(2*16384)); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			name := "xf"
			if i%2 == 1 {
				name = "plain"
			}
			if _, err := srv.Do(conduit.Request{Tenant: "t", Workload: name, Policy: "Conduit"}); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
	srv.Drain()
	srv.Drain() // idempotent

	pools := srv.PoolStats()
	for _, key := range []string{"xf#0", "xf#1", "plain"} {
		ps, ok := pools[key]
		if !ok {
			t.Fatalf("pool stats missing entry %q (have %v)", key, poolKeys(pools))
		}
		if !ps.Closed {
			t.Errorf("%s: pool refiller still running after drain", key)
		}
		if ps.Idle != 0 {
			t.Errorf("%s: %d forks still buffered after drain", key, ps.Idle)
		}
	}
	if _, err := srv.Do(conduit.Request{Tenant: "t", Workload: "xf", Policy: "Conduit"}); !errors.Is(err, conduit.ErrDraining) {
		t.Fatalf("Do after Drain: err = %v, want ErrDraining", err)
	}
	if err := srv.RegisterSharded("late", xorFilterSource(2*16384), 2); !errors.Is(err, conduit.ErrDraining) {
		t.Fatalf("RegisterSharded after Drain: err = %v, want ErrDraining", err)
	}
}

func poolKeys(m map[string]conduit.PoolStats) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

// TestClusterServedMatchesDirect: a request served through a sharded
// registration returns the same merged result as driving the cluster
// directly.
func TestClusterServedMatchesDirect(t *testing.T) {
	cfg := conduit.DefaultConfig()
	src := xorFilterSource(4 * 16384)
	cl, err := conduit.NewSystem(cfg).DeployCluster(src, conduit.ClusterOptions{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	want, err := cl.Run("Conduit")
	if err != nil {
		t.Fatal(err)
	}
	srv := conduit.NewServer(cfg, conduit.ServeOptions{Concurrency: 2, Prefork: 1})
	defer srv.Drain()
	if err := srv.RegisterSharded("xf", src, 2); err != nil {
		t.Fatal(err)
	}
	resp, err := srv.Do(conduit.Request{Tenant: "t", Workload: "xf", Policy: "Conduit"})
	if err != nil {
		t.Fatal(err)
	}
	if got := conduit.ResultOf(resp); !reflect.DeepEqual(keyOf(got), keyOf(want)) {
		t.Fatal("served sharded result differs from direct cluster run")
	}
}

// BenchmarkClusterScatterGather measures a deploy-amortized cluster run
// at increasing shard counts (the -shards scaling axis of cmd/experiments
// and conduit-serve).
func BenchmarkClusterScatterGather(b *testing.B) {
	cfg := conduit.DefaultConfig()
	sys := conduit.NewSystem(cfg)
	src := xorFilterSource(8 * 16384)
	for _, shards := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			cl, err := sys.DeployCluster(src, conduit.ClusterOptions{Shards: shards, Prefork: 2})
			if err != nil {
				b.Fatal(err)
			}
			defer cl.Close()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := cl.Run("Conduit"); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
