module conduit

go 1.24.0
