package conduit

import (
	"strings"
	"testing"

	"conduit/internal/faultinject"
	"conduit/internal/serve"
	"conduit/internal/workloads"
)

// TestGuardShardRunContainsPanic pins the scatter-gather containment
// satellite: a panicking shard run surfaces as a `shard %d panicked`
// error — the exact wording the serve engine's containment uses — and
// never unwinds into the caller.
func TestGuardShardRunContainsPanic(t *testing.T) {
	r, err := guardShardRun(3, func() (*RunResult, error) {
		panic("kernel exploded")
	})
	if r != nil {
		t.Errorf("contained panic returned a result: %+v", r)
	}
	if err == nil || !strings.Contains(err.Error(), "shard 3 panicked: kernel exploded") {
		t.Errorf("err = %v, want a `shard 3 panicked` error", err)
	}

	r, err = guardShardRun(0, func() (*RunResult, error) {
		return &RunResult{Policy: "Conduit"}, nil
	})
	if err != nil || r == nil || r.Policy != "Conduit" {
		t.Errorf("clean run through the guard: r = %+v, err = %v", r, err)
	}
}

// TestClusterRunContainsPanickingShard drives the containment through
// the real concurrent scatter path: a shard whose run panics must fail
// that Run call with a wrapped shard error, leaving the cluster (and the
// process) fit for the next request.
func TestClusterRunContainsPanickingShard(t *testing.T) {
	w, _ := workloads.Find("aes", 1)
	cl, err := NewSystem(DefaultConfig()).DeployCluster(w.Source, ClusterOptions{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	calls := 0
	_, err = cl.runShards(func(i int, dep *Deployment) (*RunResult, error) {
		calls++
		if i == 1 {
			panic("injected shard panic")
		}
		return dep.Run("Conduit")
	})
	if err == nil || !strings.Contains(err.Error(), "shard 1 panicked") {
		t.Fatalf("scatter with a panicking shard: err = %v, want a contained shard-1 panic", err)
	}
	// The cluster still serves: containment must not poison later runs.
	if _, err := cl.Run("Conduit"); err != nil {
		t.Fatalf("run after contained shard panic: %v", err)
	}
	_ = calls
}

// TestZeroRateResilientMatchesPlainRun is the dispatcher-level
// zero-overhead pin: the resilient path with a zero-rate injector and
// the full recovery configuration must produce a result byte-identical
// to the plain Cluster.Run — same elapsed, energy, overhead, and latency
// distribution — with zero recovery costs accrued.
func TestZeroRateResilientMatchesPlainRun(t *testing.T) {
	w, _ := workloads.Find("aes", 1)
	sys := NewSystem(DefaultConfig())
	cl, err := sys.DeployCluster(w.Source, ClusterOptions{Shards: 2, Prefork: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	want, err := cl.Run("Conduit")
	if err != nil {
		t.Fatal(err)
	}
	inj := faultinject.New(faultinject.Config{Seed: 21}) // all rates zero
	// HedgeThreshold 8 clears aes's natural ~5.6x 2-shard plan skew, so
	// zero faults means zero recovery activity of any kind.
	res := newResilient("aes", cl, inj, RecoveryOptions{
		MaxAttempts:      3,
		Hedge:            true,
		HedgeThreshold:   8,
		BreakerThreshold: 4,
		FallbackPolicy:   "CPU",
	})
	var rec serve.Recovery
	got, gotRec, err := res.run("Conduit", nil)
	rec = gotRec
	if err != nil {
		t.Fatal(err)
	}
	if got.Elapsed != want.Elapsed ||
		got.ComputeEnergy != want.ComputeEnergy ||
		got.MovementEnergy != want.MovementEnergy ||
		got.OverheadTime != want.OverheadTime {
		t.Errorf("zero-rate resilient run differs from plain run:\n got: %+v\nwant: %+v", got, want)
	}
	if got.InstLatencies.Count() != want.InstLatencies.Count() ||
		got.InstLatencies.P99() != want.InstLatencies.P99() {
		t.Errorf("latency reservoirs differ: got %d samples p99 %v, want %d samples p99 %v",
			got.InstLatencies.Count(), got.InstLatencies.P99(),
			want.InstLatencies.Count(), want.InstLatencies.P99())
	}
	if rec.Retries != 0 || rec.Hedges != 0 || rec.Fallbacks != 0 || rec.Injected != 0 || rec.BackoffSim != 0 {
		t.Errorf("zero-rate run accrued recovery costs: %+v", rec)
	}
	if rec.Attempts != int64(cl.Shards()) {
		t.Errorf("Attempts = %d, want exactly one per shard (%d)", rec.Attempts, cl.Shards())
	}

	// With the default threshold (2), aes's plan skew does trigger a
	// hedge even fault-free — and the first-wins tie rule must keep the
	// primary, so the merged result is still byte-identical; only the
	// accounting shows the duplicate dispatch.
	eager := newResilient("aes", cl, faultinject.New(faultinject.Config{Seed: 22}),
		RecoveryOptions{MaxAttempts: 3, Hedge: true})
	got2, rec2, err := eager.run("Conduit", nil)
	if err != nil {
		t.Fatal(err)
	}
	if got2.Elapsed != want.Elapsed || got2.ComputeEnergy != want.ComputeEnergy {
		t.Errorf("fault-free hedged run perturbed the result: got %v/%.6fJ, want %v/%.6fJ",
			got2.Elapsed, got2.ComputeEnergy, want.Elapsed, want.ComputeEnergy)
	}
	if rec2.Hedges != 1 || rec2.HedgeWins != 0 {
		t.Errorf("skew-triggered hedge accounting: Hedges = %d, HedgeWins = %d; want 1 and 0",
			rec2.Hedges, rec2.HedgeWins)
	}
}

// TestResilientDispatchRetryExhaustion pins the dispatch seam's retry
// budget: with backend errors certain and a single attempt allowed, the
// request fails wrapped in ErrInjected; allowing retries, it keeps
// consuming backoff until the budget runs out.
func TestResilientDispatchRetryExhaustion(t *testing.T) {
	w, _ := workloads.Find("aes", 1)
	sys := NewSystem(DefaultConfig())
	dep, err := sys.Deploy(mustCompile(t, sys, w))
	if err != nil {
		t.Fatal(err)
	}
	inj := faultinject.New(faultinject.Config{Seed: 9, BackendError: 1})
	res := newResilient("aes", dep, inj, RecoveryOptions{MaxAttempts: 3})
	_, rec, err := res.run("Conduit", nil)
	if err == nil {
		t.Fatal("certain backend errors served successfully")
	}
	if rec.Retries != 2 {
		t.Errorf("Retries = %d, want 2 (three dispatch attempts)", rec.Retries)
	}
	if rec.BackoffSim <= 0 {
		t.Errorf("BackoffSim = %v, want simulated backoff charged for the retries", rec.BackoffSim)
	}
}

func mustCompile(t *testing.T, sys *System, w workloads.Named) *Compiled {
	t.Helper()
	c, err := Compile(w.Source, &sys.cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}
