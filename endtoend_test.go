package conduit_test

import (
	"bytes"
	"fmt"
	"testing"
	"testing/quick"

	conduit "conduit"
	"conduit/internal/compiler"
	"conduit/internal/sim"
	"conduit/internal/workloads"
)

// verifyDeviceAgainstInterpreter runs src on the simulated SSD under the
// given policy and compares every declared array against the compiler's
// scalar reference interpreter, bit for bit.
func verifyDeviceAgainstInterpreter(t *testing.T, src *conduit.Source, policy string) {
	t.Helper()
	cfg := conduit.DefaultConfig()
	compiled, err := conduit.Compile(src, &cfg)
	if err != nil {
		t.Fatal(err)
	}
	want, err := compiler.Interpret(src, cfg.SSD.PageSize)
	if err != nil {
		t.Fatal(err)
	}
	// Payload readback requires the functional reference system; the
	// timing-only fast path has no data plane to verify against.
	sys := conduit.NewReferenceSystem(cfg)
	res, err := sys.RunCompiled(compiled, policy)
	if err != nil {
		t.Fatal(err)
	}
	if res.Device == nil {
		t.Fatal("in-SSD run must expose the device")
	}
	ps := cfg.SSD.PageSize
	for _, arr := range src.Arrays {
		pages := compiled.ArrayPages(arr.Name)
		for i, p := range pages {
			got, err := res.Device.PageBytes(p)
			if err != nil {
				t.Fatalf("%s page %d: %v", arr.Name, i, err)
			}
			if !bytes.Equal(got, want[arr.Name][i*ps:(i+1)*ps]) {
				t.Fatalf("%s page %d differs from scalar reference under %s", arr.Name, i, policy)
			}
		}
	}
}

// TestWorkloadsEndToEndOnDevice is the flagship correctness test: every
// evaluated workload, compiled by the auto-vectorizer, deployed over the
// NVMe path, executed by the runtime offloader across all three SSD
// computation resources — must be bit-identical to scalar execution of the
// original loops.
func TestWorkloadsEndToEndOnDevice(t *testing.T) {
	if testing.Short() {
		t.Skip("full end-to-end sweep")
	}
	for _, w := range workloads.All(1) {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			verifyDeviceAgainstInterpreter(t, w.Source, "Conduit")
		})
	}
}

func TestWorkloadsEndToEndUnderPriorPolicies(t *testing.T) {
	if testing.Short() {
		t.Skip("full end-to-end sweep")
	}
	// The prior policies must be just as correct — they only differ in
	// where they run things.
	for _, policy := range []string{"DM-Offloading", "BW-Offloading", "Ares-Flash"} {
		policy := policy
		t.Run(policy, func(t *testing.T) {
			verifyDeviceAgainstInterpreter(t, workloads.AES(1), policy)
		})
	}
}

// TestRandomProgramEquivalenceProperty feeds randomly generated loop
// programs through the whole stack (vectorizer, placement, offloader,
// substrates) and checks bit-equivalence with the interpreter.
func TestRandomProgramEquivalenceProperty(t *testing.T) {
	if testing.Short() {
		t.Skip("property sweep")
	}
	ops := []compiler.OpCode{compiler.OpAdd, compiler.OpSub, compiler.OpMul,
		compiler.OpAnd, compiler.OpOr, compiler.OpXor, compiler.OpMin,
		compiler.OpMax, compiler.OpLT, compiler.OpShl, compiler.OpShr}
	policies := []string{"Conduit", "DM-Offloading", "PuD-SSD", "Ares-Flash"}

	f := func(seed uint64) bool {
		r := sim.NewRNG(seed)
		const lanes = 16 << 10 // one page of INT8
		n := (r.Intn(3) + 1) * lanes

		arrays := []*conduit.Array{
			{Name: "a", Elem: 1, Len: n, Input: true, Data: randData(r, n)},
			{Name: "b", Elem: 1, Len: n, Input: true, Data: randData(r, n)},
			{Name: "c", Elem: 1, Len: n},
			{Name: "d", Elem: 1, Len: n},
		}
		names := []string{"a", "b", "c", "d"}
		randRef := func() conduit.Expr {
			return conduit.Ref{Name: names[r.Intn(len(names))], Offset: r.Intn(5) - 2}
		}
		randExpr := func(depth int) conduit.Expr {
			if depth == 0 || r.Intn(3) == 0 {
				if r.Intn(4) == 0 {
					return conduit.Lit{Value: r.Uint64() % 256}
				}
				return randRef()
			}
			op := ops[r.Intn(len(ops))]
			var y conduit.Expr
			if op == compiler.OpShl || op == compiler.OpShr {
				y = conduit.Lit{Value: uint64(r.Intn(7))}
			} else {
				y = randRef()
			}
			return conduit.Bin{Op: op, X: randRef(), Y: y}
		}
		var stmts []conduit.Stmt
		for l := 0; l < r.Intn(3)+1; l++ {
			var body []conduit.Assign
			for a := 0; a < r.Intn(2)+1; a++ {
				body = append(body, conduit.Assign{
					Target: names[2+r.Intn(2)], // write only c/d: avoids recurrences
					Value:  randExpr(2),
				})
			}
			stmts = append(stmts, conduit.Loop{Name: fmt.Sprintf("l%d", l), N: n, Body: body})
		}
		src := &conduit.Source{Name: "prop", Arrays: arrays, Stmts: stmts}
		verifyDeviceAgainstInterpreter(t, src, policies[r.Intn(len(policies))])
		return !t.Failed()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}

func randData(r *sim.RNG, n int) []byte {
	b := make([]byte, n)
	r.Bytes(b)
	return b
}
