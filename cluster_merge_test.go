package conduit

import (
	"reflect"
	"testing"

	"conduit/internal/cluster"
	"conduit/internal/compiler"
	"conduit/internal/stats"
)

// reduceSource builds a reduce-shaped kernel: per-block lane reductions
// into acc, the case that requires the modeled host-side combine step
// after a sharded run.
func reduceSource(lanes int) *Source {
	data := make([]byte, lanes)
	for i := range data {
		data[i] = byte(i*5 + 2)
	}
	return &Source{
		Name: "reduce-kernel",
		Arrays: []*Array{
			{Name: "v", Elem: 1, Len: lanes, Input: true, Data: data},
			{Name: "acc", Elem: 1, Len: lanes},
		},
		Stmts: []compiler.Stmt{
			Loop{Name: "sum", N: lanes, Body: []Assign{
				{Target: "acc", Reduce: true, Value: Ref{Name: "v"}},
			}},
		},
	}
}

// TestClusterMergeArithmetic drives the merge with synthetic per-shard
// results and checks every rule exactly: max-of-shards for the parallel
// phase, shard-order sums for energy and counters, reservoir union,
// decision concatenation, and the reduction charge from the model.
func TestClusterMergeArithmetic(t *testing.T) {
	sys := NewSystem(DefaultConfig())
	cl, err := sys.DeployCluster(reduceSource(2*16384), ClusterOptions{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if cl.reducePages == 0 {
		t.Fatal("reduce-shaped kernel planned zero reduce pages")
	}
	if got := cl.Plan().ReducePages; got != cl.reducePages {
		t.Fatalf("Plan().ReducePages = %d, want %d", got, cl.reducePages)
	}

	mkPart := func(elapsed Time, overhead Time, computeJ, movementJ float64, lat []Time, counter int64) *RunResult {
		res := stats.NewReservoir()
		for _, v := range lat {
			res.Add(v)
		}
		ctr := stats.NewCounters()
		ctr.Add("flash.senses", counter)
		return &RunResult{
			Policy:         "Conduit",
			Elapsed:        elapsed,
			OverheadTime:   overhead,
			ComputeEnergy:  computeJ,
			MovementEnergy: movementJ,
			InstLatencies:  res,
			Decisions:      []Decision{{InstID: int(counter)}},
			Counters:       ctr,
		}
	}
	parts := []*RunResult{
		mkPart(100, 7, 1.5, 0.25, []Time{5, 9}, 3),
		mkPart(250, 4, 2.25, 0.5, []Time{1}, 11),
	}
	merged := cl.merge(parts)

	red := cluster.ReduceModel(&sys.cfg, 2, cl.reducePages)
	if red.Time <= 0 {
		t.Fatal("reduction model priced zero time for a 2-shard reduce kernel")
	}
	if want := Time(250) + red.Time; merged.Elapsed != want {
		t.Errorf("Elapsed = %v, want max(100, 250) + reduction %v = %v", merged.Elapsed, red.Time, want)
	}
	if merged.OverheadTime != 7 {
		t.Errorf("OverheadTime = %v, want max(7, 4)", merged.OverheadTime)
	}
	if want := 1.5 + 2.25 + red.ComputeJ; merged.ComputeEnergy != want {
		t.Errorf("ComputeEnergy = %v, want %v", merged.ComputeEnergy, want)
	}
	if want := 0.25 + 0.5 + red.MovementJ; merged.MovementEnergy != want {
		t.Errorf("MovementEnergy = %v, want %v", merged.MovementEnergy, want)
	}
	if merged.InstLatencies.Count() != 3 || merged.InstLatencies.Sum() != 15 {
		t.Errorf("latency union: count=%d sum=%d, want 3, 15",
			merged.InstLatencies.Count(), merged.InstLatencies.Sum())
	}
	wantDecisions := []Decision{{InstID: 3}, {InstID: 11}}
	if !reflect.DeepEqual(merged.Decisions, wantDecisions) {
		t.Errorf("Decisions = %v, want shard-order concat %v", merged.Decisions, wantDecisions)
	}
	if got := merged.Counters.Get("flash.senses"); got != 14 {
		t.Errorf("counter sum = %d, want 14", got)
	}
	if merged.Device != nil {
		t.Error("merged result exposes a device")
	}
}

// TestClusterReductionChargedOnRealRun: an executed 2-shard reduce kernel
// carries the reduction charge relative to its own shard maximum — and
// stays deterministic between concurrent and serial execution.
func TestClusterReductionChargedOnRealRun(t *testing.T) {
	sys := NewSystem(DefaultConfig())
	cl, err := sys.DeployCluster(reduceSource(2*16384), ClusterOptions{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	conc, err := cl.Run("Conduit")
	if err != nil {
		t.Fatal(err)
	}
	serial, err := cl.RunSerial("Conduit")
	if err != nil {
		t.Fatal(err)
	}
	if conc.Elapsed != serial.Elapsed || conc.ComputeEnergy != serial.ComputeEnergy ||
		conc.MovementEnergy != serial.MovementEnergy {
		t.Fatal("reduce-kernel cluster run not deterministic across execution orders")
	}
	red := cluster.ReduceModel(&sys.cfg, 2, cl.reducePages)
	if conc.Elapsed <= red.Time {
		t.Fatalf("merged elapsed %v does not exceed the reduction charge %v", conc.Elapsed, red.Time)
	}
	// A non-reducing kernel on the same cluster config pays nothing: its
	// plan records zero reduce pages.
	plain, err := sys.DeployCluster(xorMiniSource(2*16384), ClusterOptions{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer plain.Close()
	if plain.Plan().ReducePages != 0 {
		t.Fatal("non-reducing kernel planned reduce pages")
	}
}

// TestClusterReducePagesSumAcrossUnevenShards: an uneven plan (5 blocks
// over 3 shards → per-shard blocks 1/2/2) must price exactly the partial
// pages that exist — the across-shard sum of 5 — not shards × max.
func TestClusterReducePagesSumAcrossUnevenShards(t *testing.T) {
	sys := NewSystem(DefaultConfig())
	cl, err := sys.DeployCluster(reduceSource(5*16384), ClusterOptions{Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if got := cl.reducePages; got != 5 {
		t.Fatalf("reducePages = %d, want the across-shard sum 5 (1+2+2)", got)
	}
	red := cluster.ReduceModel(&sys.cfg, 3, cl.reducePages)
	if want := int64(5 * sys.cfg.SSD.PageSize); red.Bytes != want {
		t.Fatalf("reduction bytes = %d, want %d", red.Bytes, want)
	}
}

// xorMiniSource mirrors the black-box helper for white-box use.
func xorMiniSource(n int) *Source {
	a := make([]byte, n)
	for i := range a {
		a[i] = byte(i * 13)
	}
	return &Source{
		Name: "mini-xor-internal",
		Arrays: []*Array{
			{Name: "a", Elem: 1, Len: n, Input: true, Data: a},
			{Name: "out", Elem: 1, Len: n},
		},
		Stmts: []compiler.Stmt{
			Loop{Name: "fold", N: n, Body: []Assign{
				{Target: "out", Value: Bin{Op: OpXor, X: Ref{Name: "a"}, Y: Lit{Value: 0x5A}}},
			}},
		},
	}
}
